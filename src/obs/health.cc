#include "obs/health.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/audit_log.h"

namespace ucr::obs {

std::string_view HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk: return "ok";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kFailing: return "failing";
  }
  return "unknown";
}

std::vector<HealthRule> DefaultHealthRules() {
  using Signal = HealthRule::Signal;
  std::vector<HealthRule> rules;
  // Correctness first: one shadow divergence means the optimized
  // engine disagreed with the paper's Fig. 4 oracle. Never acceptable.
  rules.push_back({"shadow_mismatch_rate", "ucr_shadow_mismatch_total",
                   Signal::kCounterRate, /*degraded_at=*/-1.0,
                   /*failing_at=*/0.0, /*window=*/30,
                   "Fast-path decisions diverging from the classic oracle "
                   "(any is a correctness bug)"});
  rules.push_back({"audit_drop_rate", "ucr_audit_dropped_total",
                   Signal::kCounterRate, /*degraded_at=*/0.0,
                   /*failing_at=*/100.0, /*window=*/30,
                   "Audit events dropped by ring backpressure (the trail "
                   "has holes)"});
  rules.push_back({"reach_fallback_rate",
                   "ucr_reach_traversal_fallbacks_total",
                   Signal::kCounterRate, /*degraded_at=*/1.0,
                   /*failing_at=*/-1.0, /*window=*/30,
                   "Reachability-index misses served by full traversal "
                   "(index stale or overwhelmed)"});
  rules.push_back({"publish_wait_p99", "ucr_epoch_publish_wait_ns",
                   Signal::kHistogramP99, /*degraded_at=*/1e7,
                   /*failing_at=*/1e8, /*window=*/30,
                   "Epoch snapshot publication wait p99 (writers starving "
                   "behind readers)"});
  rules.push_back({"slow_query_rate", "ucr_slow_queries_total",
                   Signal::kCounterRate, /*degraded_at=*/0.0,
                   /*failing_at=*/100.0, /*window=*/30,
                   "Tracer-sampled queries over the slow-query latency "
                   "threshold"});
  return rules;
}

HealthEngine& HealthEngine::Global() {
  // Leaked on purpose, like Registry::Global.
  static HealthEngine* global = new HealthEngine();
  return *global;
}

void HealthEngine::SetRules(std::vector<HealthRule> rules) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(rules);
  rules_set_ = true;
}

std::vector<HealthRule> HealthEngine::rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_set_ ? rules_ : DefaultHealthRules();
}

#if UCR_METRICS_ENABLED

namespace {

struct HealthMetrics {
  Counter& transitions;
  Gauge& status;
};

HealthMetrics& GetHealthMetrics() {
  static HealthMetrics* metrics = new HealthMetrics{
      Registry::Global().GetCounter(
          "ucr_health_transitions_total",
          "Health verdict changes (ok|degraded|failing)"),
      Registry::Global().GetGauge(
          "ucr_health_status",
          "Current health verdict (0 ok, 1 degraded, 2 failing)")};
  return *metrics;
}

/// Rates are per second of *covered* interval: `points` tier-0 points
/// at the sampler cadence, clamped so a single retained point still
/// divides by a full interval.
double CoveredSeconds(size_t points) {
  const uint64_t interval_ms =
      std::max<uint64_t>(1, TimeSeriesSampler::Global().options().interval_ms);
  return static_cast<double>(std::max<size_t>(1, points)) *
         (static_cast<double>(interval_ms) / 1000.0);
}

}  // namespace

HealthRuleResult HealthEngine::EvaluateRule(const HealthRule& rule) const {
  HealthRuleResult result;
  result.name = rule.name;
  const std::vector<TimeSeriesSampler::Point> points =
      TimeSeriesSampler::Global().Recent(rule.metric, rule.window);
  result.points = points.size();
  switch (rule.signal) {
    case HealthRule::Signal::kCounterRate: {
      uint64_t total = 0;
      for (const auto& p : points) total += p.delta;
      result.value = static_cast<double>(total) / CoveredSeconds(points.size());
      break;
    }
    case HealthRule::Signal::kGaugeValue:
      result.value =
          points.empty() ? 0.0 : static_cast<double>(points.back().value);
      break;
    case HealthRule::Signal::kHistogramP99: {
      uint64_t worst = 0;
      for (const auto& p : points) worst = std::max(worst, p.p99);
      result.value = static_cast<double>(worst);
      break;
    }
  }
  if (rule.failing_at >= 0.0 && result.value > rule.failing_at) {
    result.status = HealthStatus::kFailing;
  } else if (rule.degraded_at >= 0.0 && result.value > rule.degraded_at) {
    result.status = HealthStatus::kDegraded;
  }
  if (result.status != HealthStatus::kOk) {
    const double threshold = result.status == HealthStatus::kFailing
                                 ? rule.failing_at
                                 : rule.degraded_at;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s: %s = %.6g > %.6g over %zu points",
                  rule.name.c_str(), rule.metric.c_str(), result.value,
                  threshold, result.points);
    result.reason = buf;
  }
  return result;
}

HealthVerdict HealthEngine::Evaluate() {
  const std::vector<HealthRule> active = rules();
  HealthVerdict verdict;
  verdict.sampler_tick = TimeSeriesSampler::Global().ticks_total();
  verdict.rules.reserve(active.size());
  for (const HealthRule& rule : active) {
    HealthRuleResult result = EvaluateRule(rule);
    verdict.status = std::max(verdict.status, result.status);
    verdict.rules.push_back(std::move(result));
  }

  HealthStatus previous;
  {
    std::lock_guard<std::mutex> lock(mu_);
    previous = verdict_.status;
    verdict_ = verdict;
  }
  GetHealthMetrics().status.Set(static_cast<int64_t>(verdict.status));
  if (previous != verdict.status) {
    transitions_.fetch_add(1, std::memory_order_relaxed);
    GetHealthMetrics().transitions.Inc();
    if (AuditLog::Enabled()) {
      AuditEvent event;
      event.type = AuditEventType::kHealthTransition;
      // Name the worst offender so the audit line alone explains the
      // flap; recovery transitions carry just the status change.
      const HealthRuleResult* worst = nullptr;
      for (const HealthRuleResult& r : verdict.rules) {
        if (r.status == verdict.status && r.status != HealthStatus::kOk) {
          worst = &r;
          break;
        }
      }
      std::snprintf(event.detail, sizeof(event.detail), "%s -> %s%s%s",
                    std::string(HealthStatusName(previous)).c_str(),
                    std::string(HealthStatusName(verdict.status)).c_str(),
                    worst != nullptr ? ": " : "",
                    worst != nullptr ? worst->reason.c_str() : "");
      AuditLog::Global().Emit(event);
    }
  }
  return verdict;
}

bool HealthEngine::Start(uint64_t interval_ms, std::string* error) {
  if (running_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "health engine already running";
    return false;
  }
  if (interval_ms == 0) {
    if (error != nullptr) *error = "health interval must be non-zero";
    return false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this, interval_ms] { Loop(interval_ms); });
  return true;
}

void HealthEngine::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthEngine::Loop(uint64_t interval_ms) {
  // Evaluation allocates (verdict vectors, reasons) by design; keep it
  // off the hot path's 0-alloc budget like the sampler thread.
  ScopedAllocExclusion alloc_exclusion;
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (running_.load(std::memory_order_relaxed)) {
    lock.unlock();
    Evaluate();
    lock.lock();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms), [this] {
      return !running_.load(std::memory_order_relaxed);
    });
  }
}

#else  // !UCR_METRICS_ENABLED

HealthRuleResult HealthEngine::EvaluateRule(const HealthRule& rule) const {
  HealthRuleResult result;
  result.name = rule.name;
  return result;
}

HealthVerdict HealthEngine::Evaluate() { return HealthVerdict{}; }

bool HealthEngine::Start(uint64_t, std::string* error) {
  if (error != nullptr) {
    *error = "instrumentation compiled out (UCR_METRICS=OFF)";
  }
  return false;
}

void HealthEngine::Stop() {}

void HealthEngine::Loop(uint64_t) {}

#endif  // UCR_METRICS_ENABLED

HealthVerdict HealthEngine::last_verdict() const {
  std::lock_guard<std::mutex> lock(mu_);
  return verdict_;
}

std::string HealthEngine::RenderJson() const {
  const HealthVerdict verdict = last_verdict();
  std::ostringstream out;
  out << "{\"status\":\"" << HealthStatusName(verdict.status)
      << "\",\"sampler_tick\":" << verdict.sampler_tick
      << ",\"transitions\":" << transitions_total() << ",\"rules\":[";
  bool first = true;
  for (const HealthRuleResult& r : verdict.rules) {
    out << (first ? "" : ",") << "{\"name\":\"" << r.name << "\",\"status\":\""
        << HealthStatusName(r.status) << "\",\"value\":" << r.value
        << ",\"points\":" << r.points;
    first = false;
    if (!r.reason.empty()) {
      out << ",\"reason\":\"";
      for (const char c : r.reason) {
        if (c == '"' || c == '\\') out << '\\';
        out << c;
      }
      out << "\"";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

void HealthEngine::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  rules_set_ = false;
  verdict_ = HealthVerdict{};
  transitions_.store(0, std::memory_order_relaxed);
}

}  // namespace ucr::obs
