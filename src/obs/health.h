#ifndef UCR_OBS_HEALTH_H_
#define UCR_OBS_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/timeseries.h"

namespace ucr::obs {

/// Aggregate verdict, ordered by severity so rule results combine with
/// max().
enum class HealthStatus : uint8_t {
  kOk = 0,
  kDegraded = 1,
  kFailing = 2,
};

/// "ok" | "degraded" | "failing".
std::string_view HealthStatusName(HealthStatus status);

/// \brief One declarative health rule over a retained time series.
///
/// A rule reduces the newest `window` tier-0 points of `metric` to a
/// single value (a per-second rate for counters, the latest value for
/// gauges, the window-max interval p99 for histograms) and compares it
/// against two thresholds. Strictly-greater comparison; a negative
/// threshold disables that level, so `failing_at = 0` is the idiom for
/// "any occurrence fails" (the paper's correctness signals — e.g. one
/// shadow divergence — are never acceptable).
struct HealthRule {
  enum class Signal : uint8_t {
    kCounterRate = 0,  ///< Sum of deltas / covered seconds.
    kGaugeValue,       ///< Latest retained value.
    kHistogramP99,     ///< Max interval p99 over the window (ns).
  };

  std::string name;    ///< Rule id, e.g. "shadow_mismatch_rate".
  std::string metric;  ///< Series name, e.g. "ucr_shadow_mismatch_total".
  Signal signal = Signal::kCounterRate;
  double degraded_at = -1.0;  ///< value > this → degraded; < 0 disables.
  double failing_at = -1.0;   ///< value > this → failing; < 0 disables.
  size_t window = 30;         ///< Tier-0 points to aggregate.
  std::string help;           ///< Operator-facing one-liner.
};

/// One evaluated rule.
struct HealthRuleResult {
  std::string name;
  HealthStatus status = HealthStatus::kOk;
  double value = 0.0;
  size_t points = 0;    ///< Retained points the value was computed from.
  std::string reason;   ///< Non-empty when status != ok.
};

/// One full evaluation.
struct HealthVerdict {
  HealthStatus status = HealthStatus::kOk;
  uint64_t sampler_tick = 0;  ///< Sampler tick at evaluation time.
  std::vector<HealthRuleResult> rules;
};

/// The shipped rule set (DESIGN.md §13): shadow-mismatch rate (any →
/// failing), audit-ring drop rate, reachability traversal-fallback
/// rate, epoch publish-wait p99, and tracer slow-query rate.
std::vector<HealthRule> DefaultHealthRules();

/// \brief Periodic evaluator turning retained telemetry into a live
/// ok|degraded|failing verdict with per-rule reasons.
///
/// Runs its own thread (default 1 s cadence) reading the
/// `TimeSeriesSampler` rings lock-free; the verdict feeds `/healthz`
/// (non-200 on failing), `/varz`, and `ucr_admin top`. Every verdict
/// change increments `ucr_health_transitions_total`, updates the
/// `ucr_health_status` gauge, and emits a `kHealthTransition` audit
/// event naming the worst rule — health flaps end up in the same
/// tamper-evident stream as the decisions they explain.
class HealthEngine {
 public:
  /// The process-wide engine (leaked, like `Registry::Global`).
  static HealthEngine& Global();

  HealthEngine() = default;
  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  /// Replaces the rule set (defaults to `DefaultHealthRules`).
  void SetRules(std::vector<HealthRule> rules);
  std::vector<HealthRule> rules() const;

  /// Starts the evaluation thread. False when already running or when
  /// the instrumentation is compiled out.
  bool Start(uint64_t interval_ms = 1000, std::string* error = nullptr);

  /// Stops and joins. Idempotent. The last verdict is retained.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Evaluates every rule now (also what the thread does each period).
  /// Updates the retained verdict and emits transition effects.
  HealthVerdict Evaluate();

  /// The most recent verdict (default-ok before any evaluation).
  HealthVerdict last_verdict() const;

  /// Verdict changes since process start.
  uint64_t transitions_total() const {
    return transitions_.load(std::memory_order_relaxed);
  }

  /// {"status":"ok","sampler_tick":N,"rules":[...]} for `/healthz` and
  /// `/varz`.
  std::string RenderJson() const;

  /// Restores default rules and the ok verdict (tests). Must not run
  /// concurrently with a started engine.
  void ResetForTesting();

 private:
  void Loop(uint64_t interval_ms);
  HealthRuleResult EvaluateRule(const HealthRule& rule) const;

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> transitions_{0};
  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  mutable std::mutex mu_;  ///< Guards rules_ and verdict_ (control path).
  bool rules_set_ = false;
  std::vector<HealthRule> rules_;
  HealthVerdict verdict_;
};

}  // namespace ucr::obs

#endif  // UCR_OBS_HEALTH_H_
