#include "obs/profiler.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace ucr::obs {

namespace {

constexpr const char* kPhaseNames[kPhaseCount] = {
    "cache_probe", "extract", "propagate", "compose", "resolve",
    "batch_assemble"};

constexpr const char* kPhaseMetricNames[kPhaseCount] = {
    "ucr_phase_cache_probe_ns", "ucr_phase_extract_ns",
    "ucr_phase_propagate_ns",   "ucr_phase_compose_ns",
    "ucr_phase_resolve_ns",     "ucr_phase_batch_assemble_ns"};

constexpr const char* kPhaseHelp[kPhaseCount] = {
    "Per-query time in cache/epoch-table probes (ns, sampled)",
    "Per-query time in ancestor sub-graph extraction (ns, sampled)",
    "Per-query time in label propagation (ns, sampled)",
    "Per-query time in indexed sink-bag composition (ns, sampled)",
    "Per-query time in Fig. 4 resolution (ns, sampled)",
    "Per-batch time in batch validation/assembly (ns, sampled)"};

}  // namespace

const char* PhaseName(Phase phase) {
  return kPhaseNames[static_cast<size_t>(phase)];
}

const char* PhaseMetricName(Phase phase) {
  return kPhaseMetricNames[static_cast<size_t>(phase)];
}

namespace internal {

namespace {

/// The per-phase histogram handles, interned once (leaked, like every
/// registry handle holder).
struct PhaseHistograms {
  Histogram* h[kPhaseCount];
  PhaseHistograms() {
    for (size_t i = 0; i < kPhaseCount; ++i) {
      h[i] = &Registry::Global().GetHistogram(kPhaseMetricNames[i],
                                              kPhaseHelp[i]);
    }
  }
};

PhaseHistograms& GetPhaseHistograms() {
  static PhaseHistograms* histograms = new PhaseHistograms();
  return *histograms;
}

}  // namespace

void FlushPhaseTls(PhaseTls& tls) {
  tls.active = false;
  PhaseHistograms& histograms = GetPhaseHistograms();
  for (size_t i = 0; i < kPhaseCount; ++i) {
    if (tls.ns[i] != 0) {
      histograms.h[i]->Observe(tls.ns[i]);
      tls.ns[i] = 0;
    }
  }
}

}  // namespace internal

#if UCR_METRICS_ENABLED && (defined(__x86_64__) || defined(__i386__))
uint64_t CycleClock::ToNs(uint64_t ticks) {
  // One-shot calibration of the invariant-TSC rate against the
  // monotonic clock. ~100 us once per process, outside any query (see
  // g_cycle_calibration below).
  static const double ns_per_tick = [] {
    const uint64_t t0 = __rdtsc();
    const uint64_t n0 = NowNs();
    while (NowNs() - n0 < 100'000) {
    }
    const uint64_t n1 = NowNs();
    const uint64_t t1 = __rdtsc();
    return t1 > t0 ? static_cast<double>(n1 - n0) /
                         static_cast<double>(t1 - t0)
                   : 1.0;
  }();
  return static_cast<uint64_t>(static_cast<double>(ticks) * ns_per_tick);
}

namespace {
/// Eager calibration at process start, so the first sampled query
/// never pays the calibration spin inside a timed phase.
[[maybe_unused]] const bool g_cycle_calibration = (CycleClock::ToNs(0), true);
}  // namespace
#else
uint64_t CycleClock::ToNs(uint64_t ticks) { return ticks; }
#endif

WallProfiler& WallProfiler::Global() {
  static WallProfiler* profiler = new WallProfiler();
  return *profiler;
}

}  // namespace ucr::obs

// ---------------------------------------------------------------------------
// Wall-clock sampling profiler. Linux-only; everything below is
// compiled out with the instrumentation (or stubbed off-Linux).
// ---------------------------------------------------------------------------

#if UCR_METRICS_ENABLED

#if defined(__linux__)

#include <cxxabi.h>
#include <dirent.h>
#include <dlfcn.h>
#include <errno.h>
#include <signal.h>
#include <stdlib.h>
#include <string.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ucr::obs {

namespace {

constexpr uint32_t kMaxFrames = 32;
constexpr uint32_t kRingCapacity = 64;      // Samples buffered per thread.
constexpr size_t kMaxProfiledThreads = 128;  // Static ring pool size.

/// One captured backtrace, leaf-first.
struct Sample {
  uint32_t depth;
  uintptr_t pc[kMaxFrames];
};

/// Per-thread SPSC ring: the signal handler (running on the owning
/// thread) is the only writer, the ticker thread the only reader.
struct alignas(64) ThreadRing {
  std::atomic<uint64_t> owner_tid{0};  // 0 = free slot.
  std::atomic<uint32_t> head{0};       // Writer position (handler).
  std::atomic<uint32_t> tail{0};       // Reader position (ticker).
  Sample samples[kRingCapacity];
};

/// Static pool: claimed by CAS from the handler (no allocation in
/// signal context), reclaimed by the ticker when the owning tid
/// disappears from /proc/self/task. Deliberately static-lifetime so a
/// straggler signal after Stop can never touch freed memory.
ThreadRing g_rings[kMaxProfiledThreads];

std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_samples_total{0};
std::atomic<uint64_t> g_dropped_total{0};
std::atomic<uint64_t> g_signals_sent{0};
std::atomic<uint32_t> g_threads_seen{0};

/// This thread's claimed ring slot (-1 = none). Plain POD TLS: safe to
/// touch from the signal handler (initial-exec TLS, no lazy init).
thread_local int t_ring_slot = -1;

// Lifecycle state, guarded by g_lifecycle_mu (never touched from the
// handler).
std::mutex g_lifecycle_mu;
bool g_running = false;
std::atomic<bool> g_ticker_stop{false};
std::thread g_ticker;
uint64_t g_started_ns = 0;
uint64_t g_stopped_ns = 0;

// Folded aggregation: raw-pc stack -> count. Keyed by the byte image
// of the leaf-first pc array. Guarded by g_fold_mu; leaked.
std::mutex g_fold_mu;
std::unordered_map<std::string, uint64_t>* g_folded = nullptr;

uint64_t OwnTid() { return static_cast<uint64_t>(::syscall(SYS_gettid)); }

/// Frame-pointer backtrace from an interrupted context. Runs in signal
/// context: no allocation, no locks, no library calls. The walk is
/// bounds-checked (alignment, strictly rising, capped distance from
/// the interrupted stack pointer) because frames below code compiled
/// without frame pointers (libc leaves) can hold garbage in the FP
/// register. Sanitizers are suppressed: the chain legitimately reads
/// stack words that are not this function's own locals.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
__attribute__((no_sanitize_address, no_sanitize_thread))
#endif
__attribute__((no_sanitize_undefined)) uint32_t
CaptureBacktrace(void* ucontext_raw, uintptr_t* out, uint32_t max_frames) {
  uintptr_t pc = 0;
  uintptr_t fp = 0;
  uintptr_t sp = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext_raw);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext_raw);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)ucontext_raw;
  pc = reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  sp = fp;
#endif
  uint32_t n = 0;
  if (pc != 0 && n < max_frames) out[n++] = pc;

  constexpr uintptr_t kAlignMask = sizeof(uintptr_t) - 1;
  constexpr uintptr_t kMaxFrameGap = uintptr_t{1} << 20;   // 1 MiB.
  constexpr uintptr_t kMaxStackSpan = uintptr_t{4} << 20;  // 4 MiB.
  while (n < max_frames && fp != 0 && (fp & kAlignMask) == 0 && fp >= sp &&
         fp - sp < kMaxStackSpan) {
    const uintptr_t next_fp = *reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t ret =
        *reinterpret_cast<const uintptr_t*>(fp + sizeof(uintptr_t));
    if (ret < 4096) break;  // Not a plausible code address.
    out[n++] = ret;
    if (next_fp <= fp || next_fp - fp > kMaxFrameGap) break;
    fp = next_fp;
  }
  return n;
}

/// SIGPROF handler. Async-signal-safe by construction: raw syscalls,
/// lock-free atomics, the static ring pool, plain POD TLS — no
/// allocation, no locks, no errno leaks.
void ProfSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  const int saved_errno = errno;
  int slot = t_ring_slot;
  if (slot < 0) {
    const uint64_t tid = OwnTid();
    for (size_t i = 0; i < kMaxProfiledThreads; ++i) {
      uint64_t expected = 0;
      if (g_rings[i].owner_tid.compare_exchange_strong(
              expected, tid, std::memory_order_acq_rel,
              std::memory_order_acquire) ||
          expected == tid) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) {
      g_dropped_total.fetch_add(1, std::memory_order_relaxed);
      errno = saved_errno;
      return;
    }
    t_ring_slot = slot;
    g_threads_seen.fetch_add(1, std::memory_order_relaxed);
  }
  ThreadRing& ring = g_rings[slot];
  const uint32_t head = ring.head.load(std::memory_order_relaxed);
  const uint32_t tail = ring.tail.load(std::memory_order_acquire);
  if (head - tail >= kRingCapacity) {
    g_dropped_total.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  Sample& sample = ring.samples[head % kRingCapacity];
  sample.depth = CaptureBacktrace(ucontext, sample.pc, kMaxFrames);
  if (sample.depth == 0) {
    sample.pc[0] = 0;
    sample.depth = 1;
  }
  ring.head.store(head + 1, std::memory_order_release);
  g_samples_total.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

/// Live thread ids from /proc/self/task. Runs on the ticker thread
/// (normal context); readdir's allocation is off-budget.
void ListTids(std::vector<uint64_t>& out) {
  out.clear();
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] < '0' || entry->d_name[0] > '9') continue;
    out.push_back(::strtoull(entry->d_name, nullptr, 10));
  }
  ::closedir(dir);
}

/// Moves every ring's pending samples into the folded aggregation.
void DrainRings() {
  ScopedAllocExclusion off_budget;
  std::lock_guard<std::mutex> lock(g_fold_mu);
  if (g_folded == nullptr) return;
  for (ThreadRing& ring : g_rings) {
    if (ring.owner_tid.load(std::memory_order_acquire) == 0) continue;
    uint32_t tail = ring.tail.load(std::memory_order_relaxed);
    const uint32_t head = ring.head.load(std::memory_order_acquire);
    while (tail != head) {
      const Sample& sample = ring.samples[tail % kRingCapacity];
      const std::string key(reinterpret_cast<const char*>(sample.pc),
                            sample.depth * sizeof(uintptr_t));
      ++(*g_folded)[key];
      ++tail;
    }
    ring.tail.store(tail, std::memory_order_release);
  }
}

/// Reclaims ring slots whose owning thread has exited (tid no longer
/// listed). Their buffered samples were drained by the caller.
void ReclaimDeadSlots(const std::vector<uint64_t>& live_tids) {
  for (ThreadRing& ring : g_rings) {
    const uint64_t owner = ring.owner_tid.load(std::memory_order_acquire);
    if (owner == 0) continue;
    if (std::find(live_tids.begin(), live_tids.end(), owner) !=
        live_tids.end()) {
      continue;
    }
    // Owner is dead: no writer exists, so resetting is race-free.
    ring.tail.store(ring.head.load(std::memory_order_acquire),
                    std::memory_order_release);
    ring.owner_tid.store(0, std::memory_order_release);
  }
}

/// One sampling pass: signal every live thread except the caller.
void SignalAllThreads(const std::vector<uint64_t>& tids, uint64_t self_tid) {
  const pid_t pid = ::getpid();
  for (const uint64_t tid : tids) {
    if (tid == self_tid) continue;
    if (::syscall(SYS_tgkill, pid, static_cast<pid_t>(tid), SIGPROF) == 0) {
      g_signals_sent.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void TickerLoop(uint32_t hz) {
  const uint64_t self_tid = OwnTid();
  const uint64_t interval_ns = 1'000'000'000ull / (hz == 0 ? 1 : hz);
  struct timespec interval;
  interval.tv_sec = static_cast<time_t>(interval_ns / 1'000'000'000ull);
  interval.tv_nsec = static_cast<long>(interval_ns % 1'000'000'000ull);

  std::vector<uint64_t> tids;
  uint64_t tick = 0;
  // Refresh the thread list roughly every 100 ms (every tick at slow
  // rates) so new threads join the profile and dead slots recycle.
  const uint64_t refresh_every =
      std::max<uint64_t>(1, 100'000'000ull / interval_ns);
  {
    ScopedAllocExclusion off_budget;
    ListTids(tids);
  }
  while (!g_ticker_stop.load(std::memory_order_acquire)) {
    struct timespec remaining = interval;
    while (::nanosleep(&remaining, &remaining) != 0 && errno == EINTR) {
      if (g_ticker_stop.load(std::memory_order_acquire)) break;
    }
    if (g_ticker_stop.load(std::memory_order_acquire)) break;
    if (tick++ % refresh_every == 0) {
      ScopedAllocExclusion off_budget;
      ListTids(tids);
      DrainRings();
      ReclaimDeadSlots(tids);
    }
    SignalAllThreads(tids, self_tid);
    DrainRings();
  }
}

// -- Symbolization (cold; RenderFolded only). -------------------------------

/// One /proc/self/maps segment (executable only).
struct MapSegment {
  uintptr_t start = 0;
  uintptr_t end = 0;
  uintptr_t offset = 0;
  std::string path;
};

std::vector<MapSegment> ReadExecutableMaps() {
  std::vector<MapSegment> segments;
  FILE* f = ::fopen("/proc/self/maps", "re");
  if (f == nullptr) return segments;
  char line[1024];
  while (::fgets(line, sizeof(line), f) != nullptr) {
    uintptr_t start = 0;
    uintptr_t end = 0;
    uintptr_t offset = 0;
    char perms[8] = {0};
    int path_pos = -1;
    if (::sscanf(line, "%zx-%zx %7s %zx %*s %*s %n", &start, &end, perms,
                 &offset, &path_pos) < 4) {
      continue;
    }
    if (perms[2] != 'x') continue;
    MapSegment seg;
    seg.start = start;
    seg.end = end;
    seg.offset = offset;
    if (path_pos > 0) {
      std::string path(line + path_pos);
      while (!path.empty() && (path.back() == '\n' || path.back() == ' ')) {
        path.pop_back();
      }
      seg.path = std::move(path);
    }
    segments.push_back(std::move(seg));
  }
  ::fclose(f);
  return segments;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Best-effort name of one pc: dladdr symbol (demangled), else
/// "module+0xoff" from /proc/self/maps, else the raw address.
std::string SymbolizePc(uintptr_t pc, const std::vector<MapSegment>& maps) {
  Dl_info info;
  if (::dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      ::free(demangled);
      // Fold template/argument noise: flamegraphs want frame names,
      // not full signatures.
      const size_t paren = out.find('(');
      if (paren != std::string::npos) out.resize(paren);
      return out;
    }
    if (demangled != nullptr) ::free(demangled);
    return info.dli_sname;
  }
  for (const MapSegment& seg : maps) {
    if (pc >= seg.start && pc < seg.end) {
      char buf[64];
      ::snprintf(buf, sizeof(buf), "+0x%zx",
                 static_cast<size_t>(pc - seg.start + seg.offset));
      return (seg.path.empty() ? std::string("[anon]")
                               : Basename(seg.path)) +
             buf;
    }
  }
  char buf[32];
  ::snprintf(buf, sizeof(buf), "0x%zx", static_cast<size_t>(pc));
  return buf;
}

}  // namespace

bool WallProfiler::Start(const Options& options) {
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (g_running) return false;

  {
    ScopedAllocExclusion off_budget;
    std::lock_guard<std::mutex> fold_lock(g_fold_mu);
    if (g_folded == nullptr) {
      g_folded = new std::unordered_map<std::string, uint64_t>();
    }
    g_folded->clear();
  }
  // Discard samples buffered by a previous run.
  for (ThreadRing& ring : g_rings) {
    ring.tail.store(ring.head.load(std::memory_order_acquire),
                    std::memory_order_release);
  }
  g_samples_total.store(0, std::memory_order_relaxed);
  g_dropped_total.store(0, std::memory_order_relaxed);
  g_signals_sent.store(0, std::memory_order_relaxed);

  struct sigaction action;
  ::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &ProfSignalHandler;
  // SA_RESTART keeps restartable syscalls transparent; the EINTR audit
  // (DESIGN.md §14) covers the calls the kernel refuses to restart
  // (e.g. recv with a receive timeout).
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  ::sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, nullptr) != 0) return false;

  g_started_ns = NowNs();
  g_stopped_ns = 0;
  g_ticker_stop.store(false, std::memory_order_release);
  g_armed.store(true, std::memory_order_release);
  {
    ScopedAllocExclusion off_budget;
    g_ticker = std::thread(TickerLoop, options.hz);
  }
  g_running = true;
  return true;
}

void WallProfiler::Stop() {
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (!g_running) return;
  // Disarm first: in-flight SIGPROFs become no-ops, then no new ones
  // are sent once the ticker joins.
  g_armed.store(false, std::memory_order_release);
  g_ticker_stop.store(true, std::memory_order_release);
  if (g_ticker.joinable()) g_ticker.join();
  DrainRings();  // Collect samples captured before the disarm.
  g_stopped_ns = NowNs();
  g_running = false;
}

bool WallProfiler::running() const {
  std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  return g_running;
}

std::string WallProfiler::RenderFolded() {
  ScopedAllocExclusion off_budget;
  DrainRings();

  // Copy the aggregation, then symbolize outside the fold lock.
  std::vector<std::pair<std::string, uint64_t>> stacks;
  {
    std::lock_guard<std::mutex> lock(g_fold_mu);
    if (g_folded != nullptr) {
      stacks.assign(g_folded->begin(), g_folded->end());
    }
  }

  const std::vector<MapSegment> maps = ReadExecutableMaps();
  std::unordered_map<uintptr_t, std::string> symbol_cache;
  const auto name_of = [&](uintptr_t pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, SymbolizePc(pc, maps)).first;
    }
    return it->second;
  };

  // Identical symbolized stacks merge (distinct pcs inside one
  // function fold to one frame name); sorted output is deterministic.
  std::map<std::string, uint64_t> folded;
  for (const auto& [key, count] : stacks) {
    const auto* pcs = reinterpret_cast<const uintptr_t*>(key.data());
    const size_t depth = key.size() / sizeof(uintptr_t);
    std::string line;
    // Ring samples are leaf-first; folded format is root-first. Every
    // non-leaf frame is a return address: step back one byte so the
    // symbol is the call site's function, not the instruction after.
    for (size_t i = depth; i-- > 0;) {
      const uintptr_t pc = pcs[i];
      const uintptr_t lookup = (i == 0 || pc == 0) ? pc : pc - 1;
      if (!line.empty()) line += ';';
      line += (pc == 0) ? "[unknown]" : name_of(lookup);
    }
    folded[line] += count;
  }

  std::string out;
  char buf[32];
  for (const auto& [line, count] : folded) {
    out += line;
    ::snprintf(buf, sizeof(buf), " %llu\n",
               static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

WallProfiler::Stats WallProfiler::GetStats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(g_lifecycle_mu);
    stats.running = g_running;
    const uint64_t end = g_running ? NowNs() : g_stopped_ns;
    if (g_started_ns != 0 && end > g_started_ns) {
      stats.duration_s =
          static_cast<double>(end - g_started_ns) / 1'000'000'000.0;
    }
  }
  stats.samples_total = g_samples_total.load(std::memory_order_relaxed);
  stats.dropped_total = g_dropped_total.load(std::memory_order_relaxed);
  stats.signals_sent = g_signals_sent.load(std::memory_order_relaxed);
  stats.threads_seen = g_threads_seen.load(std::memory_order_relaxed);
  if (stats.duration_s > 0) {
    stats.samples_per_sec =
        static_cast<double>(stats.samples_total) / stats.duration_s;
  }
  return stats;
}

void WallProfiler::TickOnceForTesting() {
  std::vector<uint64_t> tids;
  {
    ScopedAllocExclusion off_budget;
    ListTids(tids);
  }
  SignalAllThreads(tids, OwnTid());
  // Give the signals a moment to land before draining.
  struct timespec pause {0, 2'000'000};
  while (::nanosleep(&pause, &pause) != 0 && errno == EINTR) {
  }
  DrainRings();
}

}  // namespace ucr::obs

#else  // !defined(__linux__)

namespace ucr::obs {

bool WallProfiler::Start(const Options&) { return false; }
void WallProfiler::Stop() {}
bool WallProfiler::running() const { return false; }
std::string WallProfiler::RenderFolded() { return std::string(); }
WallProfiler::Stats WallProfiler::GetStats() const { return Stats{}; }
void WallProfiler::TickOnceForTesting() {}

}  // namespace ucr::obs

#endif  // defined(__linux__)

#endif  // UCR_METRICS_ENABLED
