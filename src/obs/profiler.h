#ifndef UCR_OBS_PROFILER_H_
#define UCR_OBS_PROFILER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

#if UCR_METRICS_ENABLED && (defined(__x86_64__) || defined(__i386__))
#include <x86intrin.h>
#endif

namespace ucr::obs {

/// \brief Phase taxonomy of one resolution query (DESIGN.md §14).
///
/// Every nanosecond a sampled query spends inside the resolve pipeline
/// is attributed to exactly one of these phases; the per-phase
/// histograms (`ucr_phase_*_ns`) are sampled distributions scraped by
/// the time-series sampler, so /statz can show a live "% time per
/// phase" panel and a latency regression names the phase that moved.
enum class Phase : uint8_t {
  kCacheProbe = 0,  ///< Resolution/sub-graph/epoch-table lookups + stores.
  kExtract,         ///< Step 1: ancestor sub-graph extraction.
  kPropagate,       ///< Steps 2-3: label propagation to the sink.
  kCompose,         ///< Reachability-index sink-bag composition (§12).
  kResolve,         ///< Step 4: Fig. 4 resolution over the sink bag.
  kBatchAssemble,   ///< Batch validation + result assembly (serving path).
};
inline constexpr size_t kPhaseCount = 6;

/// Short phase label ("cache_probe", "extract", ...).
const char* PhaseName(Phase phase);

/// Registry name of the phase's histogram ("ucr_phase_extract_ns", ...).
const char* PhaseMetricName(Phase phase);

/// Per-phase nanoseconds of one sampled query, in `Phase` order. The
/// shape attached to tracer records and slow-query audit events.
struct PhaseBreakdown {
  std::array<uint64_t, kPhaseCount> ns{};

  uint64_t of(Phase phase) const { return ns[static_cast<size_t>(phase)]; }
  uint64_t TotalNs() const {
    uint64_t total = 0;
    for (const uint64_t v : ns) total += v;
    return total;
  }
};

namespace internal {

/// Per-thread phase accumulator. Plain zero-initialized POD TLS (no
/// dynamic-init guard): the inactive check every phase timer performs
/// on the unsampled hot path is one TLS load and a branch.
struct PhaseTls {
  uint64_t ns[kPhaseCount];
  bool active;
};

inline PhaseTls& GetPhaseTls() {
  thread_local PhaseTls tls;
  return tls;
}

/// Observes every accumulated phase into its histogram and resets the
/// accumulator. Cold: runs once per sampled query.
[[gnu::cold]] void FlushPhaseTls(PhaseTls& tls);

}  // namespace internal

/// True while the calling thread is inside a sampled query's phase
/// collection scope — the gate every `ScopedPhaseTimer` checks.
inline bool PhaseCollectionActive() {
#if UCR_METRICS_ENABLED
  return internal::GetPhaseTls().active;
#else
  return false;
#endif
}

/// Attributes `ns` to `phase` on the calling thread. No-op unless a
/// collection scope is active (i.e. the enclosing query is sampled).
inline void AddPhaseNs(Phase phase, uint64_t ns) {
#if UCR_METRICS_ENABLED
  internal::PhaseTls& tls = internal::GetPhaseTls();
  if (tls.active) tls.ns[static_cast<size_t>(phase)] += ns;
#else
  (void)phase;
  (void)ns;
#endif
}

/// \brief Cycle-accurate clock for the scoped phase timers: `rdtsc` on
/// x86 (a few cycles, no vDSO call), `NowNs` elsewhere. `ToNs` converts
/// a tick delta to nanoseconds using a once-calibrated ratio, so phase
/// values share the log2-nanosecond histogram buckets with every other
/// latency metric.
class CycleClock {
 public:
  static uint64_t Now() {
#if UCR_METRICS_ENABLED && (defined(__x86_64__) || defined(__i386__))
    return __rdtsc();
#else
    return NowNs();
#endif
  }

  /// Tick delta -> nanoseconds (identity when `Now` is `NowNs`).
  static uint64_t ToNs(uint64_t ticks);
};

/// \brief Owner scope of one sampled query's phase attribution.
///
/// The outermost sampled entry point (ResolveAccess standalone,
/// CheckAccess, BatchResolver::ResolveOne, SnapshotResolveAccess)
/// constructs one with its sampling decision. When `sampled` is true
/// and no outer scope exists, the scope activates the thread's
/// accumulator; inner `ScopedPhaseTimer`s — woven through extraction,
/// propagation, composition, resolution, and the cache probes — then
/// attribute into it regardless of which layer they live in. The
/// destructor flushes the accumulated phases into the `ucr_phase_*_ns`
/// histograms. A nested scope (e.g. ResolveAccess under CheckAccess)
/// is a no-op: the outer owner keeps the attribution.
class ScopedPhaseCollection {
 public:
  explicit ScopedPhaseCollection(bool sampled) {
#if !UCR_METRICS_ENABLED
    (void)sampled;
#else
    if (sampled) {
      internal::PhaseTls& tls = internal::GetPhaseTls();
      if (!tls.active) {
        tls.active = true;
        for (uint64_t& v : tls.ns) v = 0;
        owner_ = true;
      }
    }
#endif
  }

  ~ScopedPhaseCollection() {
#if UCR_METRICS_ENABLED
    if (owner_) internal::FlushPhaseTls(internal::GetPhaseTls());
#endif
  }

  ScopedPhaseCollection(const ScopedPhaseCollection&) = delete;
  ScopedPhaseCollection& operator=(const ScopedPhaseCollection&) = delete;

  bool owner() const { return owner_; }

  /// The phases accumulated so far (this thread, this scope). Valid
  /// while the scope is alive; used to attach the breakdown to tracer
  /// records and slow-query audit events before the flush.
  PhaseBreakdown Snapshot() const {
    PhaseBreakdown out;
#if UCR_METRICS_ENABLED
    const internal::PhaseTls& tls = internal::GetPhaseTls();
    if (tls.active) {
      for (size_t i = 0; i < kPhaseCount; ++i) out.ns[i] = tls.ns[i];
    }
#endif
    return out;
  }

 private:
  bool owner_ = false;
};

/// \brief Scoped timer attributing its lifetime to one phase.
///
/// Armed only while the enclosing query's collection scope is active,
/// so the unsampled hot path pays one TLS load and a branch per
/// instrumented region — no clock reads, preserving the ≤2% overhead
/// and 0-allocs-per-query invariants (tests/hotpath_alloc_test.cc).
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(Phase phase) {
#if UCR_METRICS_ENABLED
    if (PhaseCollectionActive()) {
      phase_ = phase;
      start_ = CycleClock::Now();
      armed_ = true;
    }
#else
    (void)phase;
#endif
  }

  ~ScopedPhaseTimer() {
#if UCR_METRICS_ENABLED
    if (armed_) {
      AddPhaseNs(phase_, CycleClock::ToNs(CycleClock::Now() - start_));
    }
#endif
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
#if UCR_METRICS_ENABLED
  Phase phase_ = Phase::kCacheProbe;
  uint64_t start_ = 0;
  bool armed_ = false;
#endif
};

/// \brief Suspends phase attribution for deliberate off-query work
/// running inside a sampled query's scope (the shadow oracle's
/// re-resolution would otherwise pollute the extract/propagate
/// phases with its own traversal).
class ScopedPhaseSuspend {
 public:
  ScopedPhaseSuspend() {
#if UCR_METRICS_ENABLED
    internal::PhaseTls& tls = internal::GetPhaseTls();
    was_active_ = tls.active;
    tls.active = false;
#endif
  }
  ~ScopedPhaseSuspend() {
#if UCR_METRICS_ENABLED
    internal::GetPhaseTls().active = was_active_;
#endif
  }
  ScopedPhaseSuspend(const ScopedPhaseSuspend&) = delete;
  ScopedPhaseSuspend& operator=(const ScopedPhaseSuspend&) = delete;

 private:
  bool was_active_ = false;
};

/// \brief Wall-clock sampling profiler (DESIGN.md §14).
///
/// A dependency-free SIGPROF sampler: a ticker thread enumerates
/// `/proc/self/task` and signals every thread at the configured rate;
/// the async-signal-safe handler walks the frame-pointer chain from
/// the interrupted context into a per-thread lock-free ring (no
/// allocation, no locks — a CAS-claimed slot from a static pool). The
/// ticker drains the rings into folded-stack counts under
/// `ScopedAllocExclusion`; `RenderFolded` symbolizes them via `dladdr`
/// with a `/proc/self/maps` module+offset fallback, in the format
/// `flamegraph.pl` / speedscope ingest directly:
///
///   frameRoot;frameMid;frameLeaf count\n
///
/// Because every thread is signalled — running or blocked — the
/// profile is wall-clock, not CPU: a thread parked in `recv` shows up
/// under its syscall frame. All blocking loops it can interrupt retry
/// EINTR (see the §14 audit).
///
/// With `UCR_METRICS=OFF` every method is an empty inline body.
class WallProfiler {
 public:
  struct Options {
    uint32_t hz = 97;  ///< Sampling rate (prime, to dodge lockstep).
  };

  struct Stats {
    bool running = false;
    uint64_t samples_total = 0;  ///< Stacks captured into rings.
    uint64_t dropped_total = 0;  ///< Lost to ring overflow / pool limit.
    uint64_t signals_sent = 0;
    uint32_t threads_seen = 0;   ///< Distinct ring slots ever claimed.
    double duration_s = 0;       ///< Profiled wall time since Start.
    double samples_per_sec = 0;
  };

  /// The process-wide profiler (leaked, like `Registry::Global`).
  static WallProfiler& Global();

#if UCR_METRICS_ENABLED
  /// Starts sampling. False if already running or the platform lacks
  /// the required primitives. Aggregation restarts from empty.
  bool Start(const Options& options);
  bool Start() { return Start(Options()); }

  /// Stops the ticker, disarms the handler, and drains the rings. The
  /// aggregated profile stays readable until the next Start.
  void Stop();

  bool running() const;

  /// The aggregated profile as folded stacks (cold; allocates under
  /// `ScopedAllocExclusion`). Lines are sorted for determinism.
  std::string RenderFolded();

  Stats GetStats() const;

  /// One synchronous signal+drain pass (tests: deterministic sample
  /// counts without waiting out the ticker interval).
  void TickOnceForTesting();
#else
  bool Start(const Options&) { return false; }
  bool Start() { return false; }
  void Stop() {}
  bool running() const { return false; }
  std::string RenderFolded() { return std::string(); }
  Stats GetStats() const { return Stats{}; }
  void TickOnceForTesting() {}
#endif

  WallProfiler(const WallProfiler&) = delete;
  WallProfiler& operator=(const WallProfiler&) = delete;

 private:
  WallProfiler() = default;
};

}  // namespace ucr::obs

#endif  // UCR_OBS_PROFILER_H_
