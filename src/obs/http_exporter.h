#ifndef UCR_OBS_HTTP_EXPORTER_H_
#define UCR_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace ucr::obs {

/// \brief Dependency-free blocking HTTP/1.1 exposition server
/// (DESIGN.md §9, §13): one dedicated accept thread, one request per
/// connection (`Connection: close`), six read-only endpoints:
///
///   /metrics     Prometheus text (text/plain; version=0.0.4)
///   /healthz     health verdict; 503 + JSON reasons when the health
///                engine reports failing, legacy "ok" when no engine
///                has evaluated
///   /varz        JSON snapshot: metrics + tracer/audit/shadow/health
///                and time-series status
///   /tracez      JSON: recent sampled traces + last shadow mismatches
///   /timeseries  JSON: the sampler's retained two-tier history
///   /statz       JSON: one-page operator summary (qps, tail latency,
///                cache hit rates, epoch churn, health) — what
///                `ucr_admin top` polls
///
/// Binds 127.0.0.1 only — this is an operator/scrape port, not a
/// public API. Under `UCR_METRICS=OFF`, `Start` fails with an
/// explanatory error and everything else is a no-op.
class HttpExporter {
 public:
  HttpExporter() = default;
  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds `port` (0 picks an ephemeral port) and starts the serving
  /// thread. Returns false on failure with a reason in `error`.
  bool Start(uint16_t port, std::string* error = nullptr);

  /// Unblocks the accept loop and joins the thread. Idempotent.
  void Stop();

  /// Per-connection socket timeout (SO_RCVTIMEO/SO_SNDTIMEO) applied
  /// to every accepted client. A client that connects and never sends
  /// a request — or stops reading the response — is dropped after this
  /// long instead of wedging the single-threaded accept loop forever.
  /// Set before Start; 0 restores fully blocking sockets.
  void set_client_timeout_ms(uint32_t ms) { client_timeout_ms_ = ms; }
  uint32_t client_timeout_ms() const { return client_timeout_ms_; }

  /// Connections dropped because the client stalled past the timeout.
  uint64_t timeouts_total() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// The bound port (useful after Start(0)); 0 when not running.
  uint16_t port() const { return port_; }

  uint64_t requests_total() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Builds the response body + content type for `path`. Exposed for
  /// tests; returns false for unknown paths (a 404). When
  /// `http_status` is non-null it receives the response code (200
  /// unless an endpoint overrides it — /healthz returns 503 while the
  /// health engine reports failing).
  static bool RenderEndpoint(const std::string& path, std::string* body,
                             std::string* content_type,
                             int* http_status = nullptr);

 private:
  void ServeLoop();

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint32_t client_timeout_ms_ = 5000;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::thread server_;
};

}  // namespace ucr::obs

#endif  // UCR_OBS_HTTP_EXPORTER_H_
