#include "obs/http_exporter.h"

#include <algorithm>
#include <sstream>

#include "obs/audit_log.h"
#include "obs/health.h"
#include "obs/profiler.h"
#include "obs/shadow.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

#if UCR_METRICS_ENABLED
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace ucr::obs {

namespace {

#if UCR_METRICS_ENABLED
/// The wall profiler's status object (shared by /varz and /statz).
std::string RenderProfilerStats() {
  const WallProfiler::Stats stats = WallProfiler::Global().GetStats();
  std::ostringstream out;
  out << "{\"running\":" << (stats.running ? "true" : "false")
      << ",\"samples_total\":" << stats.samples_total
      << ",\"dropped_total\":" << stats.dropped_total
      << ",\"signals_sent\":" << stats.signals_sent
      << ",\"threads_seen\":" << stats.threads_seen
      << ",\"samples_per_sec\":" << stats.samples_per_sec << "}";
  return out.str();
}

/// /varz: one JSON object joining the metric registry snapshot with
/// the status of the other observability subsystems.
std::string RenderVarz() {
  const QueryTracer& tracer = QueryTracer::Global();
  const ShadowVerifier& shadow = ShadowVerifier::Global();
  const AuditLog& audit = AuditLog::Global();
  // Epoch/snapshot status (DESIGN.md §11), surfaced as its own object
  // so `ucr_admin serve` dashboards can watch snapshot lag without
  // digging through the flat metric map. Reads the gauges and counters
  // core/snapshot.cc interns — the registry hands back the same
  // objects by name, so the values are live even though obs/ cannot
  // link against core/.
  Registry& reg = Registry::Global();
  std::ostringstream out;
  out << "{\"metrics\":" << reg.RenderJson()
      << ",\"epoch\":{\"current\":"
      << reg.GetGauge("ucr_epoch_current",
                      "Epoch of the currently published snapshot")
             .Value()
      << ",\"readers\":"
      << reg.GetGauge("ucr_epoch_readers",
                      "Reader pins currently held across all epochs")
             .Value()
      << ",\"lag\":"
      << reg.GetGauge("ucr_epoch_lag",
                      "Master-state mutations applied but not yet visible "
                      "in the published snapshot")
             .Value()
      << ",\"published_total\":"
      << reg.GetCounter("ucr_epoch_published_total", "Snapshots published")
             .Value()
      << ",\"retired_total\":"
      << reg.GetCounter("ucr_epoch_retired_total",
                        "Snapshots destroyed after their readers drained")
             .Value()
      << "}"
      << ",\"tracer\":{\"sample_interval\":" << tracer.sample_interval()
      << ",\"recorded_total\":" << tracer.recorded_total() << "}"
      << ",\"audit\":{\"enabled\":" << (AuditLog::Enabled() ? "true" : "false")
      << ",\"emitted_total\":" << audit.emitted_total()
      << ",\"dropped_total\":" << audit.dropped_total()
      << ",\"written_total\":" << audit.written_total() << "}"
      << ",\"shadow\":{\"interval\":" << shadow.interval()
      << ",\"checks_total\":" << shadow.checks_total()
      << ",\"mismatch_total\":" << shadow.mismatch_total() << "}"
      // Promoted to top level so dashboards and alert probes can
      // anchor on them without walking the nested objects: the two
      // "is the observability layer lying to me" signals.
      << ",\"audit_ring_dropped_total\":" << audit.dropped_total()
      << ",\"shadow_divergences_total\":" << shadow.mismatch_total()
      << ",\"timeseries\":{\"running\":"
      << (TimeSeriesSampler::Global().running() ? "true" : "false")
      << ",\"ticks\":" << TimeSeriesSampler::Global().ticks_total() << "}"
      << ",\"profiler\":" << RenderProfilerStats()
      << ",\"health\":" << HealthEngine::Global().RenderJson() << "}";
  return out.str();
}

/// Reduction helpers over the sampler's newest tier-0 points — the
/// short window (10 points ≈ 10 s at the default cadence) /statz uses
/// so its numbers mean "now", not "since process start".
constexpr size_t kStatzWindow = 10;

double RecentRate(std::string_view metric) {
  TimeSeriesSampler& ts = TimeSeriesSampler::Global();
  const auto points = ts.Recent(metric, kStatzWindow);
  if (points.empty()) return 0.0;
  uint64_t total = 0;
  for (const auto& p : points) total += p.delta;
  const double seconds =
      static_cast<double>(points.size()) *
      (static_cast<double>(std::max<uint64_t>(1, ts.options().interval_ms)) /
       1000.0);
  return static_cast<double>(total) / seconds;
}

uint64_t RecentP99(std::string_view metric) {
  uint64_t worst = 0;
  for (const auto& p :
       TimeSeriesSampler::Global().Recent(metric, kStatzWindow)) {
    worst = std::max(worst, p.p99);
  }
  return worst;
}

/// Nanoseconds a histogram accumulated over the /statz window (the
/// sum-of-observations delta the sampler records per tick).
uint64_t RecentSumDelta(std::string_view metric) {
  uint64_t total = 0;
  for (const auto& p :
       TimeSeriesSampler::Global().Recent(metric, kStatzWindow)) {
    total += p.sum_delta;
  }
  return total;
}

/// The live "% time per phase" panel (DESIGN.md §14): each phase's
/// share of the sampled-query nanoseconds attributed over the /statz
/// window. All zeros until phase collection has flushed something.
std::string RenderPhasePanel() {
  uint64_t ns[kPhaseCount];
  uint64_t total = 0;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    ns[i] = RecentSumDelta(PhaseMetricName(static_cast<Phase>(i)));
    total += ns[i];
  }
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < kPhaseCount; ++i) {
    if (i != 0) out << ",";
    const double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(ns[i]) /
                         static_cast<double>(total);
    out << "\"" << PhaseName(static_cast<Phase>(i)) << "\":{\"ns\":" << ns[i]
        << ",\"pct\":" << pct << "}";
  }
  out << ",\"window_total_ns\":" << total << "}";
  return out.str();
}

double HitRate(std::string_view hits_name, std::string_view misses_name) {
  Registry& reg = Registry::Global();
  const uint64_t hits = reg.GetCounter(hits_name, "").Value();
  const uint64_t misses = reg.GetCounter(misses_name, "").Value();
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

/// /statz: the one-page operator summary `ucr_admin top` refreshes.
/// Rates come from the time-series rings (empty sampler → zeros);
/// ratios come straight from the cumulative counters.
std::string RenderStatz() {
  TimeSeriesSampler& ts = TimeSeriesSampler::Global();
  Registry& reg = Registry::Global();
  const double qps = RecentRate("ucr_system_queries_total") +
                     RecentRate("ucr_snapshot_queries_total") +
                     RecentRate("ucr_batch_queries_total");
  std::ostringstream out;
  out << "{\"qps\":" << qps
      << ",\"resolve_p99_ns\":" << RecentP99("ucr_resolve_latency_ns")
      << ",\"system_p99_ns\":" << RecentP99("ucr_system_query_latency_ns")
      << ",\"snapshot_p99_ns\":" << RecentP99("ucr_snapshot_query_latency_ns")
      << ",\"batch_p99_ns\":" << RecentP99("ucr_batch_query_latency_ns")
      << ",\"resolution_cache_hit_rate\":"
      << HitRate("ucr_resolution_cache_hits_total",
                 "ucr_resolution_cache_misses_total")
      << ",\"snapshot_cache_hit_rate\":"
      << HitRate("ucr_snapshot_resolution_hits_total",
                 "ucr_snapshot_resolution_misses_total")
      << ",\"epoch_publish_rate\":" << RecentRate("ucr_epoch_published_total")
      << ",\"epoch_lag\":"
      << reg.GetGauge("ucr_epoch_lag", "").Value()
      << ",\"audit_drop_rate\":" << RecentRate("ucr_audit_dropped_total")
      << ",\"shadow_mismatch_rate\":"
      << RecentRate("ucr_shadow_mismatch_total")
      << ",\"slow_query_rate\":" << RecentRate("ucr_slow_queries_total")
      << ",\"phases\":" << RenderPhasePanel()
      << ",\"profiler\":" << RenderProfilerStats()
      << ",\"sampler\":{\"running\":" << (ts.running() ? "true" : "false")
      << ",\"interval_ms\":" << ts.options().interval_ms
      << ",\"ticks\":" << ts.ticks_total() << "}"
      << ",\"health\":" << HealthEngine::Global().RenderJson() << "}";
  return out.str();
}

/// /healthz: JSON verdict once a health engine has evaluated (503 on
/// failing so probes and load balancers eject the instance); the
/// legacy bare "ok" liveness reply before that, preserving existing
/// scrapers on processes that never start the engine.
std::string RenderHealthz(std::string* content_type, int* http_status) {
  const HealthEngine& engine = HealthEngine::Global();
  const HealthVerdict verdict = engine.last_verdict();
  if (!engine.running() && verdict.rules.empty()) {
    *content_type = "text/plain; charset=utf-8";
    return "ok\n";
  }
  *content_type = "application/json";
  if (http_status != nullptr && verdict.status == HealthStatus::kFailing) {
    *http_status = 503;
  }
  return engine.RenderJson();
}

/// /tracez: recent sampled traces plus the shadow mismatch dump — the
/// live debugging surface.
std::string RenderTracez() {
  std::ostringstream out;
  out << "{\"traces\":[";
  bool first = true;
  for (const QueryTraceRecord& record : QueryTracer::Global().Snapshot()) {
    out << (first ? "" : ",") << ToJson(record);
    first = false;
  }
  out << "],\"shadow_mismatches\":[";
  first = true;
  for (const ShadowVerifier::Mismatch& m :
       ShadowVerifier::Global().RecentMismatches()) {
    out << (first ? "" : ",") << "{\"sequence\":" << m.sequence
        << ",\"subject\":" << m.subject << ",\"object\":" << m.object
        << ",\"right\":" << m.right
        << ",\"strategy_index\":" << static_cast<int>(m.strategy_index)
        << ",\"fast_granted\":" << (m.fast_granted ? "true" : "false")
        << ",\"oracle_granted\":" << (m.oracle_granted ? "true" : "false")
        << "}";
    first = false;
  }
  out << "]}";
  return out.str();
}
#endif  // UCR_METRICS_ENABLED

}  // namespace

bool HttpExporter::RenderEndpoint(const std::string& path, std::string* body,
                                  std::string* content_type,
                                  int* http_status) {
  if (http_status != nullptr) *http_status = 200;
#if UCR_METRICS_ENABLED
  if (path == "/metrics") {
    *body = Registry::Global().RenderPrometheus();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (path == "/healthz") {
    *body = RenderHealthz(content_type, http_status);
    return true;
  }
  if (path == "/varz") {
    *body = RenderVarz();
    *content_type = "application/json";
    return true;
  }
  if (path == "/tracez") {
    *body = RenderTracez();
    *content_type = "application/json";
    return true;
  }
  if (path == "/timeseries") {
    *body = TimeSeriesSampler::Global().RenderJson();
    *content_type = "application/json";
    return true;
  }
  if (path == "/statz") {
    *body = RenderStatz();
    *content_type = "application/json";
    return true;
  }
  if (path == "/profilez") {
    // Folded stacks (flamegraph.pl / speedscope input). Empty until
    // the wall profiler has been started and captured samples.
    *body = WallProfiler::Global().RenderFolded();
    *content_type = "text/plain; charset=utf-8";
    return true;
  }
#else
  (void)path;
  (void)body;
  (void)content_type;
#endif
  return false;
}

#if UCR_METRICS_ENABLED

HttpExporter::~HttpExporter() { Stop(); }

bool HttpExporter::Start(uint16_t port, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "exporter already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_relaxed);
  server_ = std::thread([this] { ServeLoop(); });
  return true;
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  // shutdown() unblocks the accept() in the serving thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  server_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpExporter::ServeLoop() {
  static Counter& requests_metric = Registry::Global().GetCounter(
      "ucr_http_requests_total", "Requests served by the exposition server");
  static Counter& timeouts_metric = Registry::Global().GetCounter(
      "ucr_http_client_timeouts_total",
      "Connections dropped because the client stalled past the socket "
      "timeout");
  while (running_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // shutdown() during Stop lands here.
      if (!running_.load(std::memory_order_relaxed)) return;
      continue;
    }
    // The accept loop is single-threaded, so one client that connects
    // and never sends (or never reads the response) must not block it
    // forever: bound every socket operation with the configured
    // timeout and drop the connection when it fires.
    if (client_timeout_ms_ > 0) {
      timeval tv{};
      tv.tv_sec = client_timeout_ms_ / 1000;
      tv.tv_usec = static_cast<long>(client_timeout_ms_ % 1000) * 1000;
      ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    // One short request per connection; read until the header break or
    // the buffer fills (request bodies are ignored — all endpoints are
    // GET).
    char buffer[2048];
    size_t total = 0;
    bool stalled = false;
    while (total < sizeof(buffer) - 1) {
      const ssize_t n =
          ::recv(client, buffer + total, sizeof(buffer) - 1 - total, 0);
      // The wall profiler's SIGPROF lands on this thread too (§14
      // EINTR audit): an interrupted read is retried, not treated as a
      // disconnect or a stall.
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        stalled = true;
        break;
      }
      if (n <= 0) break;
      total += static_cast<size_t>(n);
      buffer[total] = '\0';
      if (std::strstr(buffer, "\r\n\r\n") != nullptr ||
          std::strstr(buffer, "\n\n") != nullptr) {
        break;
      }
    }
    buffer[total] = '\0';
    if (stalled) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      timeouts_metric.Inc();
      ::close(client);
      continue;
    }

    // Parse "<METHOD> <path> ..." from the request line.
    std::string method;
    std::string path;
    {
      const char* p = buffer;
      while (*p != '\0' && *p != ' ' && *p != '\r' && *p != '\n') {
        method += *p++;
      }
      while (*p == ' ') ++p;
      while (*p != '\0' && *p != ' ' && *p != '?' && *p != '\r' &&
             *p != '\n') {
        path += *p++;
      }
    }

    requests_.fetch_add(1, std::memory_order_relaxed);
    requests_metric.Inc();

    std::string body;
    std::string content_type;
    std::string status_line;
    int http_status = 200;
    if (method != "GET") {
      status_line = "HTTP/1.1 405 Method Not Allowed";
      body = "method not allowed\n";
      content_type = "text/plain; charset=utf-8";
    } else if (RenderEndpoint(path, &body, &content_type, &http_status)) {
      status_line = http_status == 503
                        ? "HTTP/1.1 503 Service Unavailable"
                        : "HTTP/1.1 200 OK";
    } else {
      status_line = "HTTP/1.1 404 Not Found";
      body = "not found; try /metrics /healthz /varz /tracez /timeseries "
             "/statz /profilez\n";
      content_type = "text/plain; charset=utf-8";
    }

    std::ostringstream response;
    response << status_line << "\r\nContent-Type: " << content_type
             << "\r\nContent-Length: " << body.size()
             << "\r\nConnection: close\r\n\r\n"
             << body;
    const std::string out = response.str();
    size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n =
          ::send(client, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;  // §14 EINTR audit.
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(client);
  }
}

#else  // !UCR_METRICS_ENABLED

HttpExporter::~HttpExporter() = default;

bool HttpExporter::Start(uint16_t port, std::string* error) {
  (void)port;
  if (error != nullptr) {
    *error = "instrumentation compiled out (UCR_METRICS=OFF)";
  }
  return false;
}

void HttpExporter::Stop() {}

void HttpExporter::ServeLoop() {}

#endif  // UCR_METRICS_ENABLED

}  // namespace ucr::obs
