#include "obs/shadow.h"

#include <sstream>
#include <utility>

#include "obs/audit_log.h"

namespace ucr::obs {

namespace {

#if UCR_METRICS_ENABLED
struct ShadowMetrics {
  Counter& checks = Registry::Global().GetCounter(
      "ucr_shadow_checks_total",
      "Fast-path queries re-resolved by the classic shadow oracle");
  Counter& mismatches = Registry::Global().GetCounter(
      "ucr_shadow_mismatch_total",
      "Shadow comparisons where the fast path diverged from the oracle");
};

ShadowMetrics& GetShadowMetrics() {
  static ShadowMetrics* metrics = new ShadowMetrics();
  return *metrics;
}
#endif

}  // namespace

ShadowVerifier& ShadowVerifier::Global() {
  // Leaked on purpose, like Registry::Global.
  static ShadowVerifier* global = new ShadowVerifier();
  return *global;
}

void ShadowVerifier::RecordCheck() {
  checks_.fetch_add(1, std::memory_order_relaxed);
#if UCR_METRICS_ENABLED
  GetShadowMetrics().checks.Inc();
#endif
}

void ShadowVerifier::RecordMismatch(Mismatch mismatch) {
  mismatch.sequence = mismatches_.fetch_add(1, std::memory_order_relaxed);
#if UCR_METRICS_ENABLED
  GetShadowMetrics().mismatches.Inc();
  if (AuditLog::Enabled()) {
    AuditEvent event;
    event.type = AuditEventType::kShadowMismatch;
    event.has_ids = true;
    event.subject = mismatch.subject;
    event.object = mismatch.object;
    event.right = mismatch.right;
    event.has_strategy = true;
    event.strategy_index = mismatch.strategy_index;
    event.has_decision = true;
    event.granted = mismatch.fast_granted;
    std::ostringstream detail;
    detail << "fast=" << (mismatch.fast_granted ? "+" : "-")
           << " oracle=" << (mismatch.oracle_granted ? "+" : "-")
           << " | fast: " << mismatch.fast_derivation
           << " | oracle: " << mismatch.oracle_derivation;
    event.SetDetail(detail.str());
    AuditLog::Global().Emit(event);
  }
#endif
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < kMismatchRingCapacity) {
    ring_.push_back(std::move(mismatch));
    next_ = ring_.size() % kMismatchRingCapacity;
  } else {
    ring_[next_] = std::move(mismatch);
    next_ = (next_ + 1) % kMismatchRingCapacity;
  }
}

std::vector<ShadowVerifier::Mismatch> ShadowVerifier::RecentMismatches()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Mismatch> out;
  out.reserve(ring_.size());
  const size_t start = ring_.size() < kMismatchRingCapacity ? 0 : next_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void ShadowVerifier::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  checks_.store(0, std::memory_order_relaxed);
  mismatches_.store(0, std::memory_order_relaxed);
}

}  // namespace ucr::obs
