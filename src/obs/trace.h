#ifndef UCR_OBS_TRACE_H_
#define UCR_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace ucr::obs {

/// \brief One sampled query's execution record: the span timings of
/// the resolution pipeline (Step 1 sub-graph extraction → Steps 2–3
/// propagation → Step 4 resolve), the cache interactions, and the
/// Fig. 4 outcome that decided the query (mirroring
/// `core::ResolveTrace`, which is the paper's Table 3 row).
///
/// Plain data with no owning members, so recording one is a fixed-size
/// copy — the tracer's ring buffer stays allocation-free.
struct QueryTraceRecord {
  uint64_t sequence = 0;  ///< Monotonic sample number (assigned by Record).

  // Query identity.
  uint32_t subject = 0;
  uint16_t object = 0;
  uint16_t right = 0;
  uint8_t strategy_index = 0;  ///< Canonical strategy index (< 48).
  bool fast_path = false;      ///< DESIGN.md §7 engine vs classic.

  // Cache interactions (batch/serving path only; false elsewhere).
  bool resolution_cache_hit = false;
  bool subgraph_cache_hit = false;

  // Span durations in ns. A stage skipped by a cache hit reports 0.
  uint64_t extract_ns = 0;
  uint64_t propagate_ns = 0;
  uint64_t resolve_ns = 0;
  uint64_t total_ns = 0;

  // Per-phase attribution (DESIGN.md §14), collected by the scoped
  // phase timers while this query's collection scope was active. All
  // zero when phase collection was off (e.g. UCR_METRICS=OFF).
  PhaseBreakdown phases;

  // Fig. 4 outcome (paper Table 3): majority counters, Auth set,
  // returning line, decision.
  bool has_majority = false;  ///< mRule ran (c1/c2 meaningful).
  uint64_t c1 = 0;            ///< '+' count.
  uint64_t c2 = 0;            ///< '-' count.
  bool auth_computed = false;
  bool auth_has_positive = false;
  bool auth_has_negative = false;
  int returned_line = 0;  ///< 6 (majority), 8 (single mode), 9 (preference).
  bool granted = false;   ///< Effective mode == '+'.
};

/// \brief Process-wide sampling query tracer.
///
/// Sampling is 1-in-N with a per-thread countdown: `ShouldSample` is a
/// thread-local decrement and compare — no atomics, no locks, no
/// allocation — so the unsampled hot path pays a couple of
/// instructions. A sampled query is timed stage-by-stage by its call
/// site and `Record`ed into a fixed-capacity ring buffer (newest
/// overwrites oldest) under a mutex; at the default interval the lock
/// is touched once per 1024 queries.
///
/// With instrumentation compiled out (`UCR_METRICS=OFF`),
/// `ShouldSample` is a constant `false` and the sampled branches of
/// every call site are dead code.
class QueryTracer {
 public:
  static constexpr size_t kRingCapacity = 256;
  static constexpr uint64_t kDefaultInterval = 1024;

  /// The process-wide tracer (leaked, like `Registry::Global`).
  static QueryTracer& Global();

  QueryTracer() = default;
  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Sample every `every_n`-th query per thread; 0 disables sampling.
  void SetSampleInterval(uint64_t every_n) {
    g_interval.store(every_n, std::memory_order_relaxed);
  }
  uint64_t sample_interval() const {
    return g_interval.load(std::memory_order_relaxed);
  }

  /// True when the calling thread's countdown elapses. Consumes one
  /// tick per call. Static on purpose: the interval and the per-thread
  /// countdown are constant-initialized, so the unsampled path is one
  /// relaxed load, one TLS increment, and a compare — no singleton
  /// guard, no function call, no TLS dynamic-init check.
  static bool ShouldSample() {
#if UCR_METRICS_ENABLED
    const uint64_t interval = g_interval.load(std::memory_order_relaxed);
    if (interval == 0) return false;
    thread_local uint64_t since_last = 0;
    if (++since_last < interval) return false;
    since_last = 0;
    return true;
#else
    return false;
#endif
  }

  /// Sampled queries at or above this latency increment
  /// `ucr_slow_queries_total` (the health engine's slow-query rate
  /// signal). Independent of the audit log's slow-query threshold so
  /// the health verdict works without an audit sink; 0 disables.
  void SetSlowThresholdNs(uint64_t ns) {
    g_slow_ns.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return g_slow_ns.load(std::memory_order_relaxed);
  }

  /// Stores `record`, assigning and returning its sequence number (the
  /// id histogram exemplars carry so /tracez can resolve them back to
  /// this record's Fig. 4 derivation). Allocation-free; bounded by the
  /// ring capacity. Returns 0 with instrumentation compiled out.
  uint64_t Record(const QueryTraceRecord& record);

  /// Copy of the retained records, oldest first. Cold path; allocates.
  std::vector<QueryTraceRecord> Snapshot() const;

  /// Total records ever taken (>= retained).
  uint64_t recorded_total() const {
    return recorded_total_.load(std::memory_order_relaxed);
  }

  /// Drops retained records and resets the total (tests).
  void Clear();

 private:
  /// Constant-initialized (no static-init guard) so `ShouldSample` can
  /// read it without going through `Global()`.
  static inline std::atomic<uint64_t> g_interval{kDefaultInterval};
  static inline std::atomic<uint64_t> g_slow_ns{1'000'000};  // 1 ms.
  std::atomic<uint64_t> recorded_total_{0};
  mutable std::mutex mu_;
  std::array<QueryTraceRecord, kRingCapacity> ring_;
  size_t ring_size_ = 0;
  size_t next_ = 0;  ///< Ring write position.
};

/// Renders one record as a JSON object (strategy as canonical index;
/// callers with access to `core::AllStrategies()` can print the
/// mnemonic alongside).
std::string ToJson(const QueryTraceRecord& record);

/// Renders the record's Fig. 4 derivation as the paper's Table 3 row:
/// the counters, the Auth set, and which line returned — the
/// audit-grade explanation of the decision.
std::string ToFig4String(const QueryTraceRecord& record);

/// Single-line, allocation-free rendering of the same derivation into
/// `buf` (e.g. "c1=3 c2=1 auth=n/a line=6 -> '+'"). Used by the audit
/// log's slow-query events, which are emitted on the query thread and
/// must not touch the heap. Returns the number of characters written
/// (excluding the NUL); output is truncated to `size`.
size_t FormatFig4Compact(const QueryTraceRecord& record, char* buf,
                         size_t size);

}  // namespace ucr::obs

#endif  // UCR_OBS_TRACE_H_
