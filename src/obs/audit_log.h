#ifndef UCR_OBS_AUDIT_LOG_H_
#define UCR_OBS_AUDIT_LOG_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace ucr::obs {

/// What happened. State-changing operations are logged unconditionally
/// while the audit log runs; access decisions and slow queries are
/// sampled (DESIGN.md §9).
enum class AuditEventType : uint8_t {
  kGrant = 0,          ///< Explicit '+' authorization added.
  kDeny,               ///< Explicit '-' authorization added.
  kRevoke,             ///< Explicit authorization removed.
  kAddMember,          ///< SDAG membership edge added.
  kRemoveMember,       ///< SDAG membership edge removed.
  kStrategyChange,     ///< Session strategy reconfigured.
  kCacheClear,         ///< A derived-state cache dropped its entries.
  kEpochBump,          ///< An ACM column epoch advanced (matrix edit).
  kAccessDecision,     ///< Sampled query decision.
  kSlowQuery,          ///< Sampled query over the latency threshold.
  kShadowMismatch,     ///< Fast path diverged from the classic oracle.
  kHealthTransition,   ///< Health verdict changed (ok|degraded|failing).
  kWalCommit,          ///< Durable batch committed; value = WAL LSN.
};

/// The exposition name of an event type ("grant", "slow_query", ...).
std::string_view AuditEventTypeName(AuditEventType type);

/// \brief One audit event. Plain data with a fixed-size detail buffer,
/// so producers copy it into the ring without touching the heap — the
/// hot path can emit a sampled decision allocation-free.
struct AuditEvent {
  AuditEventType type = AuditEventType::kAccessDecision;

  // Optional field groups; the JSON renderer emits only what is set.
  bool has_ids = false;       ///< subject/object/right are meaningful.
  bool has_decision = false;  ///< granted is meaningful.
  bool has_strategy = false;  ///< strategy_index is meaningful.
  bool granted = false;
  uint8_t strategy_index = 0;  ///< Canonical strategy index (< 48).

  uint32_t subject = 0;
  uint16_t object = 0;
  uint16_t right = 0;

  uint64_t sequence = 0;    ///< Assigned at enqueue (ring position).
  uint64_t wall_ns = 0;     ///< Unix epoch ns; stamped by Emit if 0.
  uint64_t latency_ns = 0;  ///< Query latency; 0 when not applicable.
  uint64_t value = 0;       ///< Type-specific count (epoch, evictions).

  /// Free-form context: names for mutations, the compact Fig. 4
  /// derivation for slow queries and shadow mismatches. Always
  /// NUL-terminated; silently truncated.
  char detail[448] = {};

  void SetDetail(std::string_view text) {
    const size_t n = text.size() < sizeof(detail) - 1 ? text.size()
                                                      : sizeof(detail) - 1;
    std::memcpy(detail, text.data(), n);
    detail[n] = '\0';
  }
};

static_assert(std::is_trivially_copyable_v<AuditEvent>,
              "events are copied in and out of a lock-free ring");

/// Renders one event as a single JSON-lines object (no trailing
/// newline). Cold path; allocates.
std::string AuditEventToJson(const AuditEvent& event);

#if UCR_METRICS_ENABLED

/// Where rendered JSON lines go. `Write` receives one line without the
/// trailing newline and is only ever called from the writer thread, so
/// implementations need no locking of their own.
class AuditSink {
 public:
  virtual ~AuditSink();
  virtual void Write(std::string_view line) = 0;
  virtual void Flush() {}
};

/// One line per event to stderr (operator tail-mode).
class StderrSink : public AuditSink {
 public:
  void Write(std::string_view line) override;
  void Flush() override;
};

/// Appends to `path`, renaming `path` -> `path.1` -> ... -> `path.N`
/// when the active file would exceed `max_bytes` (the oldest backup
/// falls off). Sized rotation keeps an always-on audit trail bounded.
///
/// I/O failures are never silent: every failed open, write, or rotation
/// rename is counted (`ucr_audit_sink_errors_total` and `errors()`),
/// and while the file is unwritable lines divert to stderr so the
/// trail degrades to un-rotated rather than to nothing. Each `Write`
/// retries the open once, so the sink self-heals when the path becomes
/// writable again.
class RotatingFileSink : public AuditSink {
 public:
  /// `fsync_on_flush` upgrades `Flush` from "handed to the kernel"
  /// (fflush) to "on disk" (fsync) — for deployments treating the
  /// audit trail as a system of record.
  explicit RotatingFileSink(std::string path, size_t max_bytes = 64u << 20,
                            int max_backups = 3, bool fsync_on_flush = false);
  ~RotatingFileSink() override;

  void Write(std::string_view line) override;
  void Flush() override;

  /// False when the file is currently unwritable (lines divert to
  /// stderr until an open retry succeeds).
  bool ok() const { return file_ != nullptr; }
  uint64_t rotations() const { return rotations_; }
  /// I/O failures observed (open, write, rename) since construction.
  uint64_t errors() const { return errors_; }

 private:
  void Rotate();
  /// Opens `path_` for append, counting a failure. Sets `file_`.
  void OpenFile();
  /// Counts one failure and emits a one-line stderr notice the first
  /// time the sink enters the failed state.
  void NoteError(const char* what);

  std::string path_;
  size_t max_bytes_;
  int max_backups_;
  bool fsync_on_flush_;
  std::FILE* file_ = nullptr;
  size_t bytes_ = 0;
  uint64_t rotations_ = 0;
  uint64_t errors_ = 0;
  bool reported_failed_ = false;  ///< Stderr notice already printed.
  StderrSink fallback_;
};

/// Swallows lines, counting them — the bench/test sink.
class DiscardSink : public AuditSink {
 public:
  void Write(std::string_view) override { ++lines_; }
  uint64_t lines() const { return lines_; }

 private:
  uint64_t lines_ = 0;
};

struct AuditLogOptions {
  std::vector<std::unique_ptr<AuditSink>> sinks;

  /// Sampled queries at or above this latency additionally emit a
  /// kSlowQuery event carrying the full Fig. 4 derivation; 0 disables.
  uint64_t slow_query_threshold_ns = 1'000'000;  // 1 ms.

  /// Emit a kAccessDecision event for every tracer-sampled query.
  bool log_sampled_decisions = true;
};

/// \brief Append-only structured audit log (DESIGN.md §9).
///
/// Producers — mutation paths, the sampled query tracer, the shadow
/// verifier — enqueue fixed-size events into a bounded MPSC ring
/// (Vyukov-style: one CAS claim plus a per-slot release store; no
/// locks, no allocation). A background writer drains the ring, renders
/// JSON lines, and hands them to the configured sinks. When the ring
/// is full the producer drops the event and counts it
/// (`ucr_audit_dropped_total`): audit pressure must never stall the
/// serving path.
///
/// With `UCR_METRICS=OFF` the class collapses to inert inline stubs
/// and `Enabled()` is a compile-time `false`, so instrumented call
/// sites are dead code.
class AuditLog {
 public:
  static constexpr size_t kRingCapacity = 1024;  // Power of two.

  /// The process-wide log (leaked, like `Registry::Global`).
  static AuditLog& Global();

  AuditLog();
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// True once `Start` has run and `Stop` has not. One relaxed load of
  /// a constant-initialized atomic — cheap enough to guard every
  /// mutation-path call site.
  static bool Enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }

  /// Sampled queries at or above this latency log their derivation.
  static uint64_t slow_query_threshold_ns() {
    return g_slow_ns.load(std::memory_order_relaxed);
  }
  static bool log_sampled_decisions() {
    return g_log_decisions.load(std::memory_order_relaxed);
  }

  /// Takes ownership of the sinks and starts the writer thread.
  /// Returns false (and changes nothing) if already running.
  bool Start(AuditLogOptions options);

  /// Drains outstanding events, flushes sinks, stops the writer, and
  /// releases the sinks. Idempotent.
  void Stop();

  /// Enqueues `event` (stamping wall time and sequence). Returns false
  /// when the log is disabled or the ring is full (event dropped).
  bool Emit(const AuditEvent& event);

  /// Blocks until every event enqueued before the call has been
  /// written and the sinks flushed (bounded by a few seconds; tests).
  void Flush();

  uint64_t emitted_total() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  uint64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t written_total() const {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq;
    AuditEvent event;
  };

  void WriterLoop();
  size_t DrainOnce();

  /// Constant-initialized statics so `Enabled()` and the thresholds
  /// are readable from any thread without a singleton guard.
  static inline std::atomic<bool> g_enabled{false};
  static inline std::atomic<uint64_t> g_slow_ns{0};
  static inline std::atomic<bool> g_log_decisions{false};

  std::array<Slot, kRingCapacity> ring_;
  std::atomic<uint64_t> head_{0};  ///< Producer claim cursor.
  uint64_t tail_ = 0;              ///< Consumer cursor (writer only).

  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};

  std::mutex lifecycle_mu_;  ///< Serializes Start/Stop.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> running_{false};
  std::thread writer_;
  std::vector<std::unique_ptr<AuditSink>> sinks_;
};

#else  // !UCR_METRICS_ENABLED

// Inert stubs: same API shape, empty bodies, so call sites and the
// admin CLI compile unchanged under UCR_METRICS=OFF.
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void Write(std::string_view) = 0;
  virtual void Flush() {}
};

class StderrSink : public AuditSink {
 public:
  void Write(std::string_view) override {}
};

class RotatingFileSink : public AuditSink {
 public:
  explicit RotatingFileSink(std::string, size_t = 64u << 20, int = 3,
                            bool = false) {}
  void Write(std::string_view) override {}
  bool ok() const { return false; }
  uint64_t rotations() const { return 0; }
  uint64_t errors() const { return 0; }
};

class DiscardSink : public AuditSink {
 public:
  void Write(std::string_view) override {}
  uint64_t lines() const { return 0; }
};

struct AuditLogOptions {
  std::vector<std::unique_ptr<AuditSink>> sinks;
  uint64_t slow_query_threshold_ns = 0;
  bool log_sampled_decisions = false;
};

class AuditLog {
 public:
  static constexpr size_t kRingCapacity = 1024;
  static AuditLog& Global();
  static constexpr bool Enabled() { return false; }
  static constexpr uint64_t slow_query_threshold_ns() { return 0; }
  static constexpr bool log_sampled_decisions() { return false; }
  bool Start(AuditLogOptions) { return false; }
  void Stop() {}
  bool Emit(const AuditEvent&) { return false; }
  void Flush() {}
  uint64_t emitted_total() const { return 0; }
  uint64_t dropped_total() const { return 0; }
  uint64_t written_total() const { return 0; }
};

#endif  // UCR_METRICS_ENABLED

}  // namespace ucr::obs

#endif  // UCR_OBS_AUDIT_LOG_H_
