#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/audit_log.h"
#include "obs/profiler.h"

namespace ucr::obs {

QueryTracer& QueryTracer::Global() {
  static QueryTracer* global = new QueryTracer();
  return *global;
}

#if UCR_METRICS_ENABLED
namespace {

/// Audit emission for a sampled query (DESIGN.md §9): a decision event
/// for every sample, plus a slow-query event carrying the compact
/// Fig. 4 derivation when the latency threshold is breached. Runs on
/// the query thread, so everything stays on the stack — the events are
/// fixed-size PODs and the derivation is snprintf-formatted.
[[gnu::noinline, gnu::cold]] void AuditSampledQuery(
    const QueryTraceRecord& record) {
  AuditEvent event;
  event.has_ids = true;
  event.subject = record.subject;
  event.object = record.object;
  event.right = record.right;
  event.has_strategy = true;
  event.strategy_index = record.strategy_index;
  event.has_decision = true;
  event.granted = record.granted;
  event.latency_ns = record.total_ns;
  if (AuditLog::log_sampled_decisions()) {
    event.type = AuditEventType::kAccessDecision;
    AuditLog::Global().Emit(event);
  }
  const uint64_t slow_ns = AuditLog::slow_query_threshold_ns();
  if (slow_ns != 0 && record.total_ns >= slow_ns) {
    event.type = AuditEventType::kSlowQuery;
    size_t n = FormatFig4Compact(record, event.detail, sizeof(event.detail));
    // Phase breakdown (DESIGN.md §14): name the phase that made the
    // query slow, right in the audit event. Stack-only, like the rest.
    if (record.phases.TotalNs() != 0 && n + 1 < sizeof(event.detail)) {
      for (size_t i = 0; i < kPhaseCount && n + 1 < sizeof(event.detail);
           ++i) {
        const uint64_t ns = record.phases.ns[i];
        if (ns == 0) continue;
        const int w = std::snprintf(
            event.detail + n, sizeof(event.detail) - n, " %s=%lluns",
            PhaseName(static_cast<Phase>(i)),
            static_cast<unsigned long long>(ns));
        if (w <= 0) break;
        n = std::min(n + static_cast<size_t>(w), sizeof(event.detail) - 1);
      }
    }
    AuditLog::Global().Emit(event);
  }
}

}  // namespace
#endif

uint64_t QueryTracer::Record(const QueryTraceRecord& record) {
#if UCR_METRICS_ENABLED
  static Counter& sampled_total = Registry::Global().GetCounter(
      "ucr_traces_sampled_total", "Query traces recorded by the sampler");
  static Counter& slow_total = Registry::Global().GetCounter(
      "ucr_slow_queries_total",
      "Tracer-sampled queries at or above the tracer's slow-query "
      "threshold (health-engine signal)");
  sampled_total.Inc();
  const uint64_t slow_ns = g_slow_ns.load(std::memory_order_relaxed);
  if (slow_ns != 0 && record.total_ns >= slow_ns) slow_total.Inc();
  uint64_t sequence;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_[next_] = record;
    sequence = recorded_total_.fetch_add(1, std::memory_order_relaxed);
    ring_[next_].sequence = sequence;
    next_ = (next_ + 1) % kRingCapacity;
    if (ring_size_ < kRingCapacity) ++ring_size_;
  }
  if (AuditLog::Enabled()) [[unlikely]] {
    AuditSampledQuery(record);
  }
  return sequence;
#else
  (void)record;
  return 0;
#endif
}

std::vector<QueryTraceRecord> QueryTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryTraceRecord> out;
  out.reserve(ring_size_);
  const size_t start = (next_ + kRingCapacity - ring_size_) % kRingCapacity;
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(start + i) % kRingCapacity]);
  }
  return out;
}

void QueryTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_size_ = 0;
  next_ = 0;
  recorded_total_.store(0, std::memory_order_relaxed);
}

std::string ToJson(const QueryTraceRecord& r) {
  std::ostringstream out;
  out << "{\"sequence\":" << r.sequence << ",\"subject\":" << r.subject
      << ",\"object\":" << r.object << ",\"right\":" << r.right
      << ",\"strategy_index\":" << static_cast<int>(r.strategy_index)
      << ",\"fast_path\":" << (r.fast_path ? "true" : "false")
      << ",\"resolution_cache_hit\":"
      << (r.resolution_cache_hit ? "true" : "false")
      << ",\"subgraph_cache_hit\":"
      << (r.subgraph_cache_hit ? "true" : "false")
      << ",\"extract_ns\":" << r.extract_ns
      << ",\"propagate_ns\":" << r.propagate_ns
      << ",\"resolve_ns\":" << r.resolve_ns << ",\"total_ns\":" << r.total_ns
      << ",\"phases\":{";
  for (size_t i = 0; i < kPhaseCount; ++i) {
    if (i != 0) out << ",";
    out << "\"" << PhaseName(static_cast<Phase>(i))
        << "_ns\":" << r.phases.ns[i];
  }
  out << "},\"fig4\":{";
  if (r.has_majority) {
    out << "\"c1\":" << r.c1 << ",\"c2\":" << r.c2 << ",";
  }
  out << "\"auth\":\"";
  if (!r.auth_computed) {
    out << "n/a";
  } else if (r.auth_has_positive && r.auth_has_negative) {
    out << "+,-";
  } else if (r.auth_has_positive) {
    out << "+";
  } else if (r.auth_has_negative) {
    out << "-";
  } else {
    out << "{}";
  }
  out << "\",\"returned_line\":" << r.returned_line << ",\"granted\":"
      << (r.granted ? "true" : "false") << "}}";
  return out.str();
}

std::string ToFig4String(const QueryTraceRecord& r) {
  std::ostringstream out;
  out << "Resolve() derivation (paper Fig. 4):\n";
  if (r.resolution_cache_hit) {
    out << "  served from the resolution cache — the derivation below "
           "was recorded when the entry was first computed\n";
  }
  if (r.has_majority) {
    out << "  lines 4-5: majority counters c1 = " << r.c1 << " ('+'), c2 = "
        << r.c2 << " ('-')\n";
  } else {
    out << "  lines 4-5: skipped (mRule = skip; c1, c2 = n/a)\n";
  }
  if (r.returned_line == 6) {
    out << "  line 6:    strict majority decides -> "
        << (r.granted ? "'+'" : "'-'") << "\n";
    return out.str();
  }
  out << "  line 7:    Auth = ";
  if (!r.auth_computed) {
    out << "n/a";
  } else if (r.auth_has_positive && r.auth_has_negative) {
    out << "{+,-}";
  } else if (r.auth_has_positive) {
    out << "{+}";
  } else if (r.auth_has_negative) {
    out << "{-}";
  } else {
    out << "{}";
  }
  out << "\n";
  if (r.returned_line == 8) {
    out << "  line 8:    a single mode survives -> "
        << (r.granted ? "'+'" : "'-'") << "\n";
  } else {
    out << "  line 9:    preference rule settles the "
        << (r.auth_has_positive && r.auth_has_negative ? "conflict"
                                                       : "empty set")
        << " -> " << (r.granted ? "'+'" : "'-'") << "\n";
  }
  return out.str();
}

size_t FormatFig4Compact(const QueryTraceRecord& r, char* buf, size_t size) {
  if (size == 0) return 0;
  char c1[24];
  char c2[24];
  if (r.has_majority) {
    std::snprintf(c1, sizeof(c1), "%llu",
                  static_cast<unsigned long long>(r.c1));
    std::snprintf(c2, sizeof(c2), "%llu",
                  static_cast<unsigned long long>(r.c2));
  } else {
    std::snprintf(c1, sizeof(c1), "n/a");
    std::snprintf(c2, sizeof(c2), "n/a");
  }
  const char* auth = "n/a";
  if (r.auth_computed) {
    if (r.auth_has_positive && r.auth_has_negative) {
      auth = "{+,-}";
    } else if (r.auth_has_positive) {
      auth = "{+}";
    } else if (r.auth_has_negative) {
      auth = "{-}";
    } else {
      auth = "{}";
    }
  }
  const int n = std::snprintf(buf, size, "c1=%s c2=%s auth=%s line=%d -> '%c'",
                              c1, c2, auth, r.returned_line,
                              r.granted ? '+' : '-');
  return n < 0 ? 0 : static_cast<size_t>(n) < size ? static_cast<size_t>(n)
                                                   : size - 1;
}

}  // namespace ucr::obs
