#ifndef UCR_OBS_TIMESERIES_H_
#define UCR_OBS_TIMESERIES_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "obs/metrics.h"

namespace ucr::obs {

/// \brief Retained telemetry history (DESIGN.md §13).
///
/// A background thread scrapes the metrics registry on a fixed cadence
/// (default 1 s) and folds every metric into two fixed-size retention
/// tiers of per-interval points:
///
///   tier 0: one point per tick        (default 1 s × 300 = 5 min)
///   tier 1: one point per N ticks     (default 10 s × 360 = 1 h)
///
/// Counters become interval deltas (rates), gauges keep their
/// instantaneous value, and histograms get bucket-delta p50/p99 — the
/// quantiles of what happened *during* the interval, not since process
/// start, which is what the health engine and the `/timeseries` +
/// `/statz` endpoints need to spot a live regression.
///
/// The rings are lock-light by construction: every point field is a
/// relaxed atomic and the per-ring cursor is released after the point
/// is complete, so scrapers read without taking any lock (a torn
/// overwrite of the oldest point is detected via the point's tick word
/// and skipped). The series directory is append-only — a fixed slot
/// array published through an atomic count — so readers never observe
/// a half-registered series. The sampler thread runs its whole loop
/// under `ScopedAllocExclusion`: its scrape-side heap traffic is
/// deliberate observability work, off the hot path's 0-alloc budget.
class TimeSeriesSampler {
 public:
  /// Bounded directory: more distinct metric names than this are
  /// ignored (the registry is code-defined and holds ~100).
  static constexpr size_t kMaxSeries = 256;

  struct Options {
    uint64_t interval_ms = 1000;  ///< Base (tier-0) cadence.
    size_t tier0_capacity = 300;  ///< 5 min at the default cadence.
    size_t tier1_capacity = 360;  ///< 1 h at the default cadence.
    size_t tier1_stride = 10;     ///< Ticks folded into one tier-1 point.
  };

  /// One retained interval for one metric. Only the fields matching
  /// the series kind are meaningful.
  struct Point {
    uint64_t tick = 0;     ///< Sampler tick that closed the interval.
    uint64_t wall_ms = 0;  ///< Unix wall clock at capture (ms).
    uint64_t delta = 0;       ///< Counters: increments this interval.
    int64_t value = 0;        ///< Gauges: instantaneous value.
    uint64_t count_delta = 0;  ///< Histograms: observations this interval.
    uint64_t sum_delta = 0;    ///< Histograms: sum of those observations.
    uint64_t p50 = 0;  ///< Histograms: interval p50 (bucket upper bound).
    uint64_t p99 = 0;  ///< Histograms: interval p99 (bucket upper bound).
  };

  /// The process-wide sampler (leaked, like `Registry::Global`).
  static TimeSeriesSampler& Global();

  TimeSeriesSampler() = default;
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Starts the background scrape thread. Returns false (with a reason
  /// in `error`) when already running or when the instrumentation is
  /// compiled out.
  bool Start(Options options, std::string* error = nullptr);
  bool Start() { return Start(Options{}); }

  /// Stops and joins the scrape thread. Retained points survive (the
  /// next Start keeps appending). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Completed scrape ticks.
  uint64_t ticks_total() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

  /// Runs one synchronous scrape tick on the calling thread (tests and
  /// single-shot tools; do not mix with a running background thread).
  void TickOnceForTesting() { Tick(); }

  /// Applies `options` without starting the background thread, so
  /// manually-ticked tests control capacities and strides. No-op when
  /// the sampler is running.
  void ConfigureForTesting(const Options& options) {
    if (!running()) options_ = options;
  }

  /// The newest `n` tier-0 points of `metric`, oldest first. Lock-free
  /// (directory scan + ring reads); empty when the series is unknown.
  std::vector<Point> Recent(std::string_view metric, size_t n) const;

  /// Same for tier 1 (the 10 s × 1 h retention).
  std::vector<Point> RecentTier1(std::string_view metric, size_t n) const;

  /// Series kind by name: 0 counter, 1 gauge, 2 histogram, -1 unknown.
  int SeriesKind(std::string_view metric) const;

  /// Full JSON dump for the `/timeseries` endpoint:
  /// {"running":...,"interval_ms":...,"ticks":...,"tiers":[...],
  ///  "series":{name:{"kind":...,"tier0":[...],"tier1":[...]}}}.
  std::string RenderJson() const;

  /// Drops every retained series and resets the tick counter (tests).
  /// Must not run concurrently with a started sampler.
  void ResetForTesting();

 private:
  struct AtomicPoint {
    std::atomic<uint64_t> tick{0};  ///< 0 = empty / write in flight.
    std::atomic<uint64_t> wall_ms{0};
    std::atomic<uint64_t> delta{0};
    std::atomic<int64_t> value{0};
    std::atomic<uint64_t> count_delta{0};
    std::atomic<uint64_t> sum_delta{0};
    std::atomic<uint64_t> p50{0};
    std::atomic<uint64_t> p99{0};
  };

  struct TierRing {
    explicit TierRing(size_t capacity) : points(capacity) {}
    std::vector<AtomicPoint> points;  ///< Fixed size after construction.
    std::atomic<uint64_t> written{0};
  };

  struct Series {
    std::string name;
    int kind = 0;
    TierRing tier0;
    TierRing tier1;
    // Sampler-thread-private baselines (cumulative value at the last
    // push of each tier; histograms keep the full bucket snapshot so
    // interval quantiles come from bucket deltas).
    bool primed = false;
    uint64_t prev_counter[2] = {0, 0};
    Histogram::Snapshot prev_hist[2];

    Series(std::string series_name, int series_kind, size_t cap0,
           size_t cap1)
        : name(std::move(series_name)),
          kind(series_kind),
          tier0(cap0),
          tier1(cap1) {}
  };

  void Tick();
  void Loop();
  static void PushPoint(TierRing& ring, const Point& point);
  static std::vector<Point> ReadRing(const TierRing& ring, size_t n);
  const Series* FindSeries(std::string_view metric) const;

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  /// Append-only series directory. `series_count_` is released after
  /// the slot pointer is stored, so lock-free readers only ever see
  /// fully constructed series. Reset (tests only) frees the slots — its
  /// contract excludes concurrent readers.
  std::array<std::atomic<Series*>, kMaxSeries> slots_{};
  std::atomic<size_t> series_count_{0};

  /// Sampler-thread-private index over the same Series objects.
  std::map<std::string, Series*, std::less<>> index_;
};

/// Interval quantile from log2 bucket deltas: the upper bound of the
/// bucket containing the `q`-quantile observation (0 when the interval
/// saw none). Exposed for tests and the health engine.
uint64_t BucketDeltaQuantile(
    const std::array<uint64_t, Histogram::kBuckets>& deltas, double q);

}  // namespace ucr::obs

#endif  // UCR_OBS_TIMESERIES_H_
