#ifndef UCR_OBS_SHADOW_H_
#define UCR_OBS_SHADOW_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ucr::obs {

/// \brief Online shadow verification (DESIGN.md §9): bookkeeping for
/// the production tripwire that re-resolves 1-in-N fast-path queries
/// with the classic engine and compares bit-for-bit.
///
/// This class owns only the sampling decision, the counters, and the
/// mismatch dump ring; the actual oracle re-resolution lives in
/// `core::ShadowVerifyDecision` (the obs layer cannot depend on core).
/// Sampling mirrors `QueryTracer::ShouldSample`: a per-thread
/// countdown against a constant-initialized interval, so the
/// non-shadowed hot path pays a relaxed load, a TLS increment, and a
/// compare. Shadowing is off by default (`interval() == 0`).
class ShadowVerifier {
 public:
  static constexpr size_t kMismatchRingCapacity = 16;

  /// The process-wide verifier (leaked, like `Registry::Global`).
  static ShadowVerifier& Global();

  ShadowVerifier() = default;
  ShadowVerifier(const ShadowVerifier&) = delete;
  ShadowVerifier& operator=(const ShadowVerifier&) = delete;

  /// Shadow every `every_n`-th fast-path query per thread; 0 disables.
  void SetInterval(uint64_t every_n) {
    g_interval.store(every_n, std::memory_order_relaxed);
  }
  uint64_t interval() const {
    return g_interval.load(std::memory_order_relaxed);
  }

  /// True when the calling thread's countdown elapses; consumes one
  /// tick per call. Constant `false` under `UCR_METRICS=OFF`.
  static bool ShouldShadow() {
#if UCR_METRICS_ENABLED
    const uint64_t interval = g_interval.load(std::memory_order_relaxed);
    if (interval == 0) return false;
    thread_local uint64_t since_last = 0;
    if (++since_last < interval) return false;
    since_last = 0;
    return true;
#else
    return false;
#endif
  }

  /// Test hook: the core-side oracle inverts its decision when set,
  /// simulating a fast-path/classic divergence end to end.
  void SetPerturbOracleForTesting(bool on) {
    g_perturb.store(on, std::memory_order_relaxed);
  }
  static bool perturb_oracle_for_testing() {
    return g_perturb.load(std::memory_order_relaxed);
  }

  /// One detected divergence, with both Fig. 4 derivations rendered.
  struct Mismatch {
    uint64_t sequence = 0;  ///< Mismatch ordinal (assigned on record).
    uint32_t subject = 0;
    uint16_t object = 0;
    uint16_t right = 0;
    uint8_t strategy_index = 0;
    bool fast_granted = false;
    bool oracle_granted = false;
    std::string fast_derivation;
    std::string oracle_derivation;
  };

  /// Counts one completed shadow comparison.
  void RecordCheck();

  /// Counts and retains a divergence; emits a kShadowMismatch audit
  /// event carrying both derivations. Cold path; allocates.
  void RecordMismatch(Mismatch mismatch);

  /// Retained mismatches, oldest first. Cold path; allocates.
  std::vector<Mismatch> RecentMismatches() const;

  uint64_t checks_total() const {
    return checks_.load(std::memory_order_relaxed);
  }
  uint64_t mismatch_total() const {
    return mismatches_.load(std::memory_order_relaxed);
  }

  /// Drops retained mismatches and resets the totals (tests).
  void Clear();

 private:
  static inline std::atomic<uint64_t> g_interval{0};
  static inline std::atomic<bool> g_perturb{false};

  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> mismatches_{0};
  mutable std::mutex mu_;
  std::vector<Mismatch> ring_;  ///< Bounded by kMismatchRingCapacity.
  size_t next_ = 0;             ///< Ring write position.
};

}  // namespace ucr::obs

#endif  // UCR_OBS_SHADOW_H_
