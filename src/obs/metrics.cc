#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>

namespace ucr::obs {

namespace internal {

size_t AssignThreadSlot() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kSlots;
}

int& AllocExclusionDepth() {
  // Trivially initialized: no dynamic-init guard, so the counting
  // allocator may call this from any allocation context.
  thread_local int depth = 0;
  return depth;
}

}  // namespace internal

namespace {

/// HELP text is a single line in the exposition format; backslashes
/// and newlines must be escaped (the only two escapes the format
/// defines for HELP).
std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!tail(c)) return false;
  }
  return true;
}

/// One registered metric: its help string plus exactly one of the
/// three metric objects. unique_ptr keeps addresses stable across map
/// rehashes, which is what lets call sites cache references.
struct Registry::Entry {
  std::string help;
  int kind = 0;  // 0 = counter, 1 = gauge, 2 = histogram.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

/// Ordered map so exposition output is deterministic (sorted by name),
/// which keeps golden tests and diffs stable.
struct Registry::Impl {
  std::map<std::string, Entry, std::less<>> entries;
};

Registry& Registry::Global() {
  // Leaked on purpose: see the class comment.
  static Registry* global = new Registry();
  return *global;
}

Registry::~Registry() { delete impl_; }

Registry::Entry* Registry::FindOrCreate(std::string_view name,
                                        std::string_view help, int kind) {
  if (!IsValidMetricName(name)) {
    // A malformed name is a programming error at an interning call
    // site; letting it through would corrupt every scrape of the
    // exposition endpoint, so fail loudly and immediately.
    std::fprintf(stderr, "ucr/obs: invalid metric name '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (impl_ == nullptr) impl_ = new Impl();
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.kind = kind;
    switch (kind) {
      case 0:
        entry.counter = std::make_unique<Counter>();
        break;
      case 1:
        entry.gauge = std::make_unique<Gauge>();
        break;
      default:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = impl_->entries.emplace(std::string(name), std::move(entry)).first;
  }
  // A name re-registered as a different kind is a programming error;
  // return the existing entry (the caller's Get* will die on the null
  // pointer in tests immediately) rather than silently aliasing.
  return &it->second;
}

Counter& Registry::GetCounter(std::string_view name, std::string_view help) {
  return *FindOrCreate(name, help, 0)->counter;
}

Gauge& Registry::GetGauge(std::string_view name, std::string_view help) {
  return *FindOrCreate(name, help, 1)->gauge;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::string_view help) {
  return *FindOrCreate(name, help, 2)->histogram;
}

size_t Registry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return impl_ == nullptr ? 0 : impl_->entries.size();
}

std::vector<Registry::CollectedMetric> Registry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CollectedMetric> out;
  if (impl_ == nullptr) return out;
  out.reserve(impl_->entries.size());
  for (const auto& [name, entry] : impl_->entries) {
    CollectedMetric m;
    m.name = name;
    m.kind = entry.kind;
    switch (entry.kind) {
      case 0:
        m.counter = entry.counter->Value();
        break;
      case 1:
        m.gauge = entry.gauge->Value();
        break;
      default:
        m.histogram = entry.histogram->Snap();
        m.histogram_handle = entry.histogram.get();
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  if (impl_ == nullptr) return out.str();
  for (const auto& [name, entry] : impl_->entries) {
    out << "# HELP " << name << " " << EscapeHelp(entry.help) << "\n";
    switch (entry.kind) {
      case 0:
        out << "# TYPE " << name << " counter\n"
            << name << " " << entry.counter->Value() << "\n";
        break;
      case 1:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << entry.gauge->Value() << "\n";
        break;
      default: {
        const Histogram::Snapshot snap = entry.histogram->Snap();
        out << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
          if (snap.counts[i] == 0) continue;  // Sparse: only hit buckets.
          cumulative += snap.counts[i];
          out << name << "_bucket{le=\""
              << Histogram::BucketUpperBound(i) << "\"} " << cumulative
              << "\n";
        }
        // The +Inf bucket is mandatory in the exposition format, so it
        // is emitted even when no finite bucket was hit.
        out << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
        out << name << "_sum " << snap.sum << "\n"
            << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string Registry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  if (impl_ != nullptr) {
    for (const auto& [name, entry] : impl_->entries) {
      switch (entry.kind) {
        case 0:
          counters << (first_counter ? "" : ",") << "\"" << name
                   << "\":" << entry.counter->Value();
          first_counter = false;
          break;
        case 1:
          gauges << (first_gauge ? "" : ",") << "\"" << name
                 << "\":" << entry.gauge->Value();
          first_gauge = false;
          break;
        default: {
          const Histogram::Snapshot snap = entry.histogram->Snap();
          histograms << (first_histogram ? "" : ",") << "\"" << name
                     << "\":{\"count\":" << snap.count
                     << ",\"sum\":" << snap.sum << ",\"buckets\":[";
          bool first_bucket = true;
          for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            if (snap.counts[i] == 0) continue;
            histograms << (first_bucket ? "" : ",") << "{\"le\":";
            if (i == Histogram::kBuckets - 1) {
              histograms << "\"+Inf\"";
            } else {
              histograms << Histogram::BucketUpperBound(i);
            }
            histograms << ",\"count\":" << snap.counts[i] << "}";
            first_bucket = false;
          }
          histograms << "]";
          // Exemplars ride along only when captured, so snapshots of
          // exemplar-free histograms keep their historical shape.
          const auto exemplars = entry.histogram->SnapExemplars();
          bool first_exemplar = true;
          for (const Histogram::Exemplar& e : exemplars) {
            if (!e.valid) continue;
            histograms << (first_exemplar ? ",\"exemplars\":[" : ",")
                       << "{\"value\":" << e.value
                       << ",\"trace_sequence\":" << e.trace_sequence
                       << ",\"subject\":" << e.subject
                       << ",\"object\":" << e.object
                       << ",\"right\":" << e.right << "}";
            first_exemplar = false;
          }
          if (!first_exemplar) histograms << "]";
          histograms << "}";
          first_histogram = false;
          break;
        }
      }
    }
  }
  std::ostringstream out;
  out << "{\"counters\":{" << counters.str() << "},\"gauges\":{"
      << gauges.str() << "},\"histograms\":{" << histograms.str() << "}}";
  return out.str();
}

bool JsonLooksValid(std::string_view json) {
  if (json.empty() || json.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

LockWaitMetrics& GetLockWaitMetrics() {
  static LockWaitMetrics* metrics = new LockWaitMetrics{
      Registry::Global().GetCounter(
          "ucr_lock_acquisitions_total",
          "Reader-path lock acquisitions (sharded caches and any other "
          "lock a concurrent query can take)"),
      Registry::Global().GetCounter(
          "ucr_lock_contended_total",
          "Reader-path lock acquisitions that had to wait"),
      Registry::Global().GetHistogram(
          "ucr_lock_wait_ns", "Contended reader-path lock wait (ns)")};
  return *metrics;
}

LockWaitMetrics& GetWriteLockMetrics() {
  static LockWaitMetrics* metrics = new LockWaitMetrics{
      Registry::Global().GetCounter(
          "ucr_write_lock_acquisitions_total",
          "Write-path lock acquisitions (mutators and snapshot "
          "publication)"),
      Registry::Global().GetCounter(
          "ucr_write_lock_contended_total",
          "Write-path lock acquisitions that had to wait"),
      Registry::Global().GetHistogram(
          "ucr_write_lock_wait_ns", "Contended write-path lock wait (ns)")};
  return *metrics;
}

}  // namespace ucr::obs
