#ifndef UCR_OBS_METRICS_H_
#define UCR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Compile-time kill switch (CMake option UCR_METRICS). With the
// option OFF every recording primitive below compiles to an empty
// inline body, so instrumented call sites cost literally nothing —
// no clock reads, no atomic traffic, no branches.
#ifndef UCR_METRICS_ENABLED
#define UCR_METRICS_ENABLED 1
#endif

namespace ucr::obs {

/// True when the instrumentation layer is compiled in. Call sites use
/// this to skip work that only feeds metrics (e.g. clock reads around
/// a region whose duration would be observed).
inline constexpr bool kEnabled = UCR_METRICS_ENABLED != 0;

namespace internal {

/// Number of cache-line-isolated slots every sharded metric spreads
/// its writers over. Threads are assigned round-robin; two threads
/// share a slot only beyond kSlots concurrent writers, and even then
/// the slot is a relaxed atomic, never a lock.
inline constexpr size_t kSlots = 16;

/// Assigns the calling thread a stable slot index (round-robin over a
/// process-wide counter).
size_t AssignThreadSlot();

inline size_t ThreadSlot() {
  // Zero-initialized TLS carries no dynamic-init guard; the +1 bias
  // reserves 0 as "unassigned" so the steady state is load + branch.
  thread_local size_t slot_plus_one = 0;
  if (slot_plus_one == 0) slot_plus_one = AssignThreadSlot() + 1;
  return slot_plus_one - 1;
}

struct alignas(64) PaddedCount {
  std::atomic<uint64_t> value{0};
};

/// Per-thread depth of `ScopedAllocExclusion` scopes. Kept behind an
/// out-of-line accessor (function-local zero-initialized TLS) rather
/// than an `extern thread_local`: cross-TU extern TLS goes through the
/// compiler's init wrapper, which GCC resolves to a null address for
/// trivially-initialized ints on non-main threads under UBSan.
int& AllocExclusionDepth();

}  // namespace internal

/// True while the calling thread is inside deliberate observability
/// work (audit writer formatting, shadow-oracle re-resolution) whose
/// heap traffic is excluded from the hot path's zero-allocation
/// budget. Honored by util/alloc_counter.cc in measuring binaries.
inline bool AllocCountingSuspended() {
  return internal::AllocExclusionDepth() > 0;
}

/// RAII scope marking the enclosed work as off-budget for the counting
/// allocator (see `AllocCountingSuspended`). Nestable; per-thread.
class ScopedAllocExclusion {
 public:
  ScopedAllocExclusion() { ++internal::AllocExclusionDepth(); }
  ~ScopedAllocExclusion() { --internal::AllocExclusionDepth(); }
  ScopedAllocExclusion(const ScopedAllocExclusion&) = delete;
  ScopedAllocExclusion& operator=(const ScopedAllocExclusion&) = delete;
};

/// Monotonic nanosecond clock for latency metrics. Returns 0 when the
/// instrumentation is compiled out, so disabled builds never pay for a
/// clock read.
inline uint64_t NowNs() {
#if UCR_METRICS_ENABLED
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#else
  return 0;
#endif
}

/// \brief Monotonic counter, per-thread sharded and merged on read.
///
/// `Inc` is one relaxed fetch_add on a cache-line-private slot:
/// lock-free, allocation-free, and contention-free up to
/// `internal::kSlots` concurrent threads — safe inside the
/// zero-allocation hot path (DESIGN.md §7). `Value` sums the slots;
/// it is exact once concurrent writers have quiesced and never under-
/// counts a finished increment.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
#if UCR_METRICS_ENABLED
    slots_[internal::ThreadSlot()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedCount, internal::kSlots> slots_;
};

/// \brief Instantaneous signed value (queue depth, active workers,
/// resident bytes). One padded atomic: gauges sit on control paths
/// (task submission, worker wake-up) that already serialize, so
/// sharding buys nothing and a single cell keeps `Set` trivially
/// correct alongside `Add`/`Sub`.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#if UCR_METRICS_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t n = 1) {
#if UCR_METRICS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Sub(int64_t n = 1) { Add(-n); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<int64_t> value_{0};
};

namespace internal {
/// Minimum observed value for exemplar capture (see
/// `Histogram::RecordExemplar`). Constant-initialized so the capture
/// path never goes through a singleton guard.
inline std::atomic<uint64_t> g_exemplar_threshold{0};
}  // namespace internal

/// Observations below this value are not captured as exemplars
/// (`Histogram::RecordExemplar` returns immediately). 0 — the default
/// — captures every observation the call site offers; call sites only
/// offer tracer-sampled queries, so even at 0 capture stays off the
/// unsampled hot path.
inline void SetExemplarThreshold(uint64_t min_value) {
  internal::g_exemplar_threshold.store(min_value, std::memory_order_relaxed);
}
inline uint64_t ExemplarThreshold() {
  return internal::g_exemplar_threshold.load(std::memory_order_relaxed);
}

/// \brief Fixed log-bucket histogram for latency-like values
/// (nanoseconds, node counts).
///
/// Bucket layout is power-of-two: bucket 0 holds exact zeros and
/// bucket i >= 1 holds values in [2^(i-1), 2^i - 1] — i.e. the bucket
/// index is `bit_width(value)`. The mapping is two instructions, needs
/// no configuration, and spans 1 ns to ~1.6 days (or 1 to ~7 * 10^13
/// for count-valued series: million-node extraction sizes and
/// reachability-label footprints must land in finite buckets, not
/// collapse into the +Inf tail) in 48 buckets.
/// `Observe` is per-thread sharded exactly like `Counter`.
class Histogram {
 public:
  static constexpr size_t kBuckets = 48;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
#if UCR_METRICS_ENABLED
    Shard& shard = shards_[internal::ThreadSlot()];
    shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// Bucket index of `value`: 0 for 0, else bit_width clamped.
  static size_t BucketIndex(uint64_t value) {
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `i` (2^i - 1; the last bucket is
  /// unbounded and reported as +Inf).
  static uint64_t BucketUpperBound(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i) - 1;
  }

  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t count = 0;  ///< Total observations.
    uint64_t sum = 0;    ///< Sum of observed values.
  };

  /// Merged view over all shards (exact while writers are quiescent).
  Snapshot Snap() const {
    Snapshot snap;
    for (const Shard& shard : shards_) {
      for (size_t i = 0; i < kBuckets; ++i) {
        snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
      }
      snap.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (const uint64_t c : snap.counts) snap.count += c;
    return snap;
  }

  /// \brief One captured latency outlier: the observed value plus the
  /// identity that produced it — the QueryTracer sequence number and
  /// the ⟨subject, object, right⟩ triple — so a histogram tail bucket
  /// links back to the full Fig. 4 derivation retained in /tracez.
  struct Exemplar {
    bool valid = false;
    uint64_t value = 0;
    uint64_t trace_sequence = 0;  ///< QueryTracer record sequence.
    uint32_t subject = 0;
    uint16_t object = 0;
    uint16_t right = 0;
  };

  /// Captures `value` + identity into the per-bucket exemplar slot
  /// (newest wins) when `value >= ExemplarThreshold()`. Lock-free and
  /// allocation-free: a CAS claim on the slot's sequence word plus
  /// relaxed field stores; a concurrent writer to the same bucket
  /// makes this a no-op (exemplars are best-effort). Call sites sit
  /// behind the tracer's sampling countdown, so the unsampled hot
  /// path never reaches here.
  void RecordExemplar(uint64_t value, uint64_t trace_sequence,
                      uint32_t subject, uint16_t object, uint16_t right) {
#if UCR_METRICS_ENABLED
    if (value < ExemplarThreshold()) return;
    ExemplarSlot& slot = exemplars_[BucketIndex(value)];
    uint32_t seq = slot.seq.load(std::memory_order_relaxed);
    if (seq & 1) return;  // Another writer owns the slot; drop.
    if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      return;
    }
    slot.value.store(value, std::memory_order_relaxed);
    slot.trace_sequence.store(trace_sequence, std::memory_order_relaxed);
    slot.subject.store(subject, std::memory_order_relaxed);
    slot.object.store(object, std::memory_order_relaxed);
    slot.right.store(right, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
#else
    (void)value;
    (void)trace_sequence;
    (void)subject;
    (void)object;
    (void)right;
#endif
  }

  /// Per-bucket exemplars (entries with `valid == false` never
  /// captured, or were mid-write on both read attempts). Cold path.
  std::array<Exemplar, kBuckets> SnapExemplars() const {
    std::array<Exemplar, kBuckets> out{};
#if UCR_METRICS_ENABLED
    for (size_t i = 0; i < kBuckets; ++i) {
      const ExemplarSlot& slot = exemplars_[i];
      for (int attempt = 0; attempt < 4; ++attempt) {
        const uint32_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 == 0) break;       // Never written.
        if (s1 & 1) continue;     // Mid-write; retry.
        Exemplar e;
        e.value = slot.value.load(std::memory_order_relaxed);
        e.trace_sequence =
            slot.trace_sequence.load(std::memory_order_relaxed);
        e.subject = slot.subject.load(std::memory_order_relaxed);
        e.object = slot.object.load(std::memory_order_relaxed);
        e.right = slot.right.load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_acquire) != s1) continue;
        e.valid = true;
        out[i] = e;
        break;
      }
    }
#endif
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> sum{0};
  };
  /// Seqlock-style slot built entirely from atomics (TSan-clean): an
  /// odd `seq` marks a write in flight; readers accept a snapshot only
  /// when `seq` is even and unchanged across the field reads.
  struct ExemplarSlot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint64_t> value{0};
    std::atomic<uint64_t> trace_sequence{0};
    std::atomic<uint32_t> subject{0};
    std::atomic<uint16_t> object{0};
    std::atomic<uint16_t> right{0};
  };
  std::array<Shard, internal::kSlots> shards_;
  std::array<ExemplarSlot, kBuckets> exemplars_;
};

/// \brief Handles for one instrumented-mutex family: how often the
/// lock was taken, how often it was contended, and the contended-wait
/// distribution. Obtain via `Registry` (e.g. `GetLockWaitMetrics()`)
/// and pass to `LockWithMetrics` at every acquisition site.
///
/// The `ucr_lock_*` family is the contention evidence this project's
/// perf claims rest on (the 1-CPU container can't show wall-clock
/// scaling): bench/read_churn asserts that the snapshot read path
/// leaves the reader-lock counters flat while the mutex baseline does
/// not.
struct LockWaitMetrics {
  Counter& acquisitions;
  Counter& contended;
  Histogram& wait_ns;
};

/// The shared-cache / reader-path lock family (`ucr_lock_*`), used by
/// every lock a concurrent *query* can take. Writer-only locks use
/// `GetWriteLockMetrics` so reader-path flatness is assertable.
LockWaitMetrics& GetLockWaitMetrics();

/// The write-path lock family (`ucr_write_lock_*`): the system write
/// mutex serializing mutators and snapshot publication.
LockWaitMetrics& GetWriteLockMetrics();

/// Locks `mu`, recording the acquisition in `metrics`: uncontended
/// acquisitions pay one counter increment and no clock read; contended
/// ones time the wait into the histogram. With instrumentation
/// compiled out this is exactly `mu.lock()`.
inline void LockWithMetrics(std::mutex& mu, LockWaitMetrics& metrics) {
#if UCR_METRICS_ENABLED
  metrics.acquisitions.Inc();
  if (mu.try_lock()) return;
  const uint64_t t0 = NowNs();
  mu.lock();
  metrics.contended.Inc();
  metrics.wait_ns.Observe(NowNs() - t0);
#else
  (void)metrics;
  mu.lock();
#endif
}

/// RAII companion of `LockWithMetrics` (an instrumented
/// `std::lock_guard`).
class ScopedMetricsLock {
 public:
  ScopedMetricsLock(std::mutex& mu, LockWaitMetrics& metrics) : mu_(mu) {
    LockWithMetrics(mu_, metrics);
  }
  ~ScopedMetricsLock() { mu_.unlock(); }
  ScopedMetricsLock(const ScopedMetricsLock&) = delete;
  ScopedMetricsLock& operator=(const ScopedMetricsLock&) = delete;

 private:
  std::mutex& mu_;
};

/// \brief Process-wide metric registry and exposition surface.
///
/// `Get*` interns a metric by name and returns a reference that stays
/// valid for the process lifetime; repeated calls with one name return
/// the same object, so instrumented translation units simply hold a
/// function-local `static Counter&`. Registration takes a mutex and
/// may allocate — it happens once per call site, never per operation.
///
/// Exposition renders every registered metric as Prometheus text
/// (counters, gauges, and cumulative histogram buckets) or as one JSON
/// snapshot object; both are cold-path, read-only, and safe to call
/// while writers are running (values are merge-on-read).
class Registry {
 public:
  /// The process-wide registry. Deliberately leaked so counters stay
  /// usable during static destruction (worker threads may still be
  /// draining).
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  Counter& GetCounter(std::string_view name, std::string_view help);
  Gauge& GetGauge(std::string_view name, std::string_view help);
  Histogram& GetHistogram(std::string_view name, std::string_view help);

  /// One metric's value at collection time. For histograms the entry
  /// also carries the (process-lifetime-stable) object pointer so
  /// collectors can read exemplars without re-interning by name.
  struct CollectedMetric {
    std::string name;
    int kind = 0;  ///< 0 counter, 1 gauge, 2 histogram.
    uint64_t counter = 0;
    int64_t gauge = 0;
    Histogram::Snapshot histogram;
    const Histogram* histogram_handle = nullptr;
  };

  /// Snapshot of every registered metric, sorted by name — the scrape
  /// surface the time-series sampler (obs/timeseries.h) consumes.
  /// Cold path; allocates; safe against concurrent writers.
  std::vector<CollectedMetric> Collect() const;

  /// Prometheus text exposition format (HELP/TYPE + samples,
  /// histograms as cumulative `_bucket{le=...}` series).
  std::string RenderPrometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"buckets":[...]}}}.
  /// Histogram buckets with zero count are omitted.
  std::string RenderJson() const;

  size_t metric_count() const;

 private:
  struct Entry;
  Entry* FindOrCreate(std::string_view name, std::string_view help, int kind);

  mutable std::mutex mu_;
  struct Impl;
  Impl* impl_ = nullptr;  ///< Lazily built; owned.
};

/// True when `name` is a legal Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Registration aborts on an illegal name
/// (a programming error that would corrupt the exposition output).
bool IsValidMetricName(std::string_view name);

/// \brief Minimal structural validity check for a JSON document:
/// non-empty, starts with '{', balanced braces/brackets outside string
/// literals, properly closed strings. Used by bench `--smoke` modes to
/// assert the metrics snapshot parses without dragging in a JSON
/// library.
bool JsonLooksValid(std::string_view json);

}  // namespace ucr::obs

#endif  // UCR_OBS_METRICS_H_
