#ifndef UCR_OBS_METRICS_H_
#define UCR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

// Compile-time kill switch (CMake option UCR_METRICS). With the
// option OFF every recording primitive below compiles to an empty
// inline body, so instrumented call sites cost literally nothing —
// no clock reads, no atomic traffic, no branches.
#ifndef UCR_METRICS_ENABLED
#define UCR_METRICS_ENABLED 1
#endif

namespace ucr::obs {

/// True when the instrumentation layer is compiled in. Call sites use
/// this to skip work that only feeds metrics (e.g. clock reads around
/// a region whose duration would be observed).
inline constexpr bool kEnabled = UCR_METRICS_ENABLED != 0;

namespace internal {

/// Number of cache-line-isolated slots every sharded metric spreads
/// its writers over. Threads are assigned round-robin; two threads
/// share a slot only beyond kSlots concurrent writers, and even then
/// the slot is a relaxed atomic, never a lock.
inline constexpr size_t kSlots = 16;

/// Assigns the calling thread a stable slot index (round-robin over a
/// process-wide counter).
size_t AssignThreadSlot();

inline size_t ThreadSlot() {
  // Zero-initialized TLS carries no dynamic-init guard; the +1 bias
  // reserves 0 as "unassigned" so the steady state is load + branch.
  thread_local size_t slot_plus_one = 0;
  if (slot_plus_one == 0) slot_plus_one = AssignThreadSlot() + 1;
  return slot_plus_one - 1;
}

struct alignas(64) PaddedCount {
  std::atomic<uint64_t> value{0};
};

/// Per-thread depth of `ScopedAllocExclusion` scopes. Kept behind an
/// out-of-line accessor (function-local zero-initialized TLS) rather
/// than an `extern thread_local`: cross-TU extern TLS goes through the
/// compiler's init wrapper, which GCC resolves to a null address for
/// trivially-initialized ints on non-main threads under UBSan.
int& AllocExclusionDepth();

}  // namespace internal

/// True while the calling thread is inside deliberate observability
/// work (audit writer formatting, shadow-oracle re-resolution) whose
/// heap traffic is excluded from the hot path's zero-allocation
/// budget. Honored by util/alloc_counter.cc in measuring binaries.
inline bool AllocCountingSuspended() {
  return internal::AllocExclusionDepth() > 0;
}

/// RAII scope marking the enclosed work as off-budget for the counting
/// allocator (see `AllocCountingSuspended`). Nestable; per-thread.
class ScopedAllocExclusion {
 public:
  ScopedAllocExclusion() { ++internal::AllocExclusionDepth(); }
  ~ScopedAllocExclusion() { --internal::AllocExclusionDepth(); }
  ScopedAllocExclusion(const ScopedAllocExclusion&) = delete;
  ScopedAllocExclusion& operator=(const ScopedAllocExclusion&) = delete;
};

/// Monotonic nanosecond clock for latency metrics. Returns 0 when the
/// instrumentation is compiled out, so disabled builds never pay for a
/// clock read.
inline uint64_t NowNs() {
#if UCR_METRICS_ENABLED
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#else
  return 0;
#endif
}

/// \brief Monotonic counter, per-thread sharded and merged on read.
///
/// `Inc` is one relaxed fetch_add on a cache-line-private slot:
/// lock-free, allocation-free, and contention-free up to
/// `internal::kSlots` concurrent threads — safe inside the
/// zero-allocation hot path (DESIGN.md §7). `Value` sums the slots;
/// it is exact once concurrent writers have quiesced and never under-
/// counts a finished increment.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
#if UCR_METRICS_ENABLED
    slots_[internal::ThreadSlot()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedCount, internal::kSlots> slots_;
};

/// \brief Instantaneous signed value (queue depth, active workers,
/// resident bytes). One padded atomic: gauges sit on control paths
/// (task submission, worker wake-up) that already serialize, so
/// sharding buys nothing and a single cell keeps `Set` trivially
/// correct alongside `Add`/`Sub`.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#if UCR_METRICS_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t n = 1) {
#if UCR_METRICS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Sub(int64_t n = 1) { Add(-n); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<int64_t> value_{0};
};

/// \brief Fixed log-bucket histogram for latency-like values
/// (nanoseconds, node counts).
///
/// Bucket layout is power-of-two: bucket 0 holds exact zeros and
/// bucket i >= 1 holds values in [2^(i-1), 2^i - 1] — i.e. the bucket
/// index is `bit_width(value)`. The mapping is two instructions, needs
/// no configuration, and spans 1 ns to ~1.6 days (or 1 to ~7 * 10^13
/// for count-valued series: million-node extraction sizes and
/// reachability-label footprints must land in finite buckets, not
/// collapse into the +Inf tail) in 48 buckets.
/// `Observe` is per-thread sharded exactly like `Counter`.
class Histogram {
 public:
  static constexpr size_t kBuckets = 48;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
#if UCR_METRICS_ENABLED
    Shard& shard = shards_[internal::ThreadSlot()];
    shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// Bucket index of `value`: 0 for 0, else bit_width clamped.
  static size_t BucketIndex(uint64_t value) {
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `i` (2^i - 1; the last bucket is
  /// unbounded and reported as +Inf).
  static uint64_t BucketUpperBound(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i) - 1;
  }

  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t count = 0;  ///< Total observations.
    uint64_t sum = 0;    ///< Sum of observed values.
  };

  /// Merged view over all shards (exact while writers are quiescent).
  Snapshot Snap() const {
    Snapshot snap;
    for (const Shard& shard : shards_) {
      for (size_t i = 0; i < kBuckets; ++i) {
        snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
      }
      snap.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (const uint64_t c : snap.counts) snap.count += c;
    return snap;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> counts{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, internal::kSlots> shards_;
};

/// \brief Handles for one instrumented-mutex family: how often the
/// lock was taken, how often it was contended, and the contended-wait
/// distribution. Obtain via `Registry` (e.g. `GetLockWaitMetrics()`)
/// and pass to `LockWithMetrics` at every acquisition site.
///
/// The `ucr_lock_*` family is the contention evidence this project's
/// perf claims rest on (the 1-CPU container can't show wall-clock
/// scaling): bench/read_churn asserts that the snapshot read path
/// leaves the reader-lock counters flat while the mutex baseline does
/// not.
struct LockWaitMetrics {
  Counter& acquisitions;
  Counter& contended;
  Histogram& wait_ns;
};

/// The shared-cache / reader-path lock family (`ucr_lock_*`), used by
/// every lock a concurrent *query* can take. Writer-only locks use
/// `GetWriteLockMetrics` so reader-path flatness is assertable.
LockWaitMetrics& GetLockWaitMetrics();

/// The write-path lock family (`ucr_write_lock_*`): the system write
/// mutex serializing mutators and snapshot publication.
LockWaitMetrics& GetWriteLockMetrics();

/// Locks `mu`, recording the acquisition in `metrics`: uncontended
/// acquisitions pay one counter increment and no clock read; contended
/// ones time the wait into the histogram. With instrumentation
/// compiled out this is exactly `mu.lock()`.
inline void LockWithMetrics(std::mutex& mu, LockWaitMetrics& metrics) {
#if UCR_METRICS_ENABLED
  metrics.acquisitions.Inc();
  if (mu.try_lock()) return;
  const uint64_t t0 = NowNs();
  mu.lock();
  metrics.contended.Inc();
  metrics.wait_ns.Observe(NowNs() - t0);
#else
  (void)metrics;
  mu.lock();
#endif
}

/// RAII companion of `LockWithMetrics` (an instrumented
/// `std::lock_guard`).
class ScopedMetricsLock {
 public:
  ScopedMetricsLock(std::mutex& mu, LockWaitMetrics& metrics) : mu_(mu) {
    LockWithMetrics(mu_, metrics);
  }
  ~ScopedMetricsLock() { mu_.unlock(); }
  ScopedMetricsLock(const ScopedMetricsLock&) = delete;
  ScopedMetricsLock& operator=(const ScopedMetricsLock&) = delete;

 private:
  std::mutex& mu_;
};

/// \brief Process-wide metric registry and exposition surface.
///
/// `Get*` interns a metric by name and returns a reference that stays
/// valid for the process lifetime; repeated calls with one name return
/// the same object, so instrumented translation units simply hold a
/// function-local `static Counter&`. Registration takes a mutex and
/// may allocate — it happens once per call site, never per operation.
///
/// Exposition renders every registered metric as Prometheus text
/// (counters, gauges, and cumulative histogram buckets) or as one JSON
/// snapshot object; both are cold-path, read-only, and safe to call
/// while writers are running (values are merge-on-read).
class Registry {
 public:
  /// The process-wide registry. Deliberately leaked so counters stay
  /// usable during static destruction (worker threads may still be
  /// draining).
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  Counter& GetCounter(std::string_view name, std::string_view help);
  Gauge& GetGauge(std::string_view name, std::string_view help);
  Histogram& GetHistogram(std::string_view name, std::string_view help);

  /// Prometheus text exposition format (HELP/TYPE + samples,
  /// histograms as cumulative `_bucket{le=...}` series).
  std::string RenderPrometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"buckets":[...]}}}.
  /// Histogram buckets with zero count are omitted.
  std::string RenderJson() const;

  size_t metric_count() const;

 private:
  struct Entry;
  Entry* FindOrCreate(std::string_view name, std::string_view help, int kind);

  mutable std::mutex mu_;
  struct Impl;
  Impl* impl_ = nullptr;  ///< Lazily built; owned.
};

/// True when `name` is a legal Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Registration aborts on an illegal name
/// (a programming error that would corrupt the exposition output).
bool IsValidMetricName(std::string_view name);

/// \brief Minimal structural validity check for a JSON document:
/// non-empty, starts with '{', balanced braces/brackets outside string
/// literals, properly closed strings. Used by bench `--smoke` modes to
/// assert the metrics snapshot parses without dragging in a JSON
/// library.
bool JsonLooksValid(std::string_view json);

}  // namespace ucr::obs

#endif  // UCR_OBS_METRICS_H_
