#ifndef UCR_WORKLOAD_EXPERIMENTS_H_
#define UCR_WORKLOAD_EXPERIMENTS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "acm/mode.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/status.h"
#include "workload/enterprise.h"

namespace ucr::workload {

/// \file
/// Runners for the paper's experiments (§4). Each returns plain data
/// rows; the bench binaries format them into the published figures'
/// shape. Keeping the runners in the library makes the experiments
/// unit-testable and reusable.

// ---------------------------------------------------------------------------
// Figure 6: Function Propagate() on synthetic KDAGs.
// ---------------------------------------------------------------------------

/// Options for `RunKdagSweep`.
///
/// Note on sizes: the sweep times the paper-literal engine, whose cost
/// is O(n + d) with d = total path length — and KDAG(n) has ~2^(n-2)
/// root-to-sink paths, so literal-feasible sizes are small. The paper
/// does not name its KDAG sizes; these defaults keep per-point cost in
/// the low milliseconds while spanning a 16x spread in d.
struct KdagSweepOptions {
  std::vector<size_t> sizes = {14, 17, 20};
  double rate_min = 0.005;   ///< 0.5% of edges (paper's lower bound).
  double rate_max = 0.100;   ///< 10% (paper's upper bound).
  double rate_step = 0.005;
  size_t repetitions = 20;   ///< Paper: averaged over 20 random repetitions.
  uint64_t seed = 42;
  uint64_t max_tuples = 500'000'000;  ///< Literal-engine safety budget.
};

/// One point of the Fig. 6 series.
struct KdagSweepRow {
  size_t n = 0;             ///< KDAG size.
  double rate = 0.0;        ///< Authorization rate (fraction of edges).
  size_t repetitions = 0;
  double mean_us = 0.0;     ///< Mean Propagate() CPU time (microseconds).
  double stddev_us = 0.0;
  double mean_tuples = 0.0; ///< Mean tuples processed (the n + d cost).
  double mean_labeled = 0.0;///< Mean explicit authorizations placed.
};

StatusOr<std::vector<KdagSweepRow>> RunKdagSweep(
    const KdagSweepOptions& options);

// ---------------------------------------------------------------------------
// Figures 7(a) and 7(b): Resolve() vs Dominance() on the enterprise
// hierarchy (the proprietary Livelink data's synthetic stand-in).
// ---------------------------------------------------------------------------

/// Options for `RunEnterpriseExperiment`.
struct EnterpriseExperimentOptions {
  EnterpriseOptions enterprise;  ///< Hierarchy shape (defaults: Livelink).
  double authorization_rate = 0.007;  ///< Paper: 0.7% of edges.

  /// Negative-placement trials for Dominance(); the paper averages
  /// over 1%, 50%, and 100% negative.
  std::vector<double> negative_fractions = {0.01, 0.5, 1.0};

  /// Strategy evaluated by Resolve(); Dominance() evaluates the same
  /// (D, P) pair with most-specific locality. Must be in the D*LP* /
  /// LP* family for the two algorithms to be comparable. Unset means
  /// the paper's D+LP-.
  std::optional<core::Strategy> strategy;

  /// Cap on the number of sinks measured (0 = all). Sinks are taken
  /// in id order, so a cap keeps runs deterministic.
  size_t max_sinks = 0;

  /// Timing repetitions per sink (reported time is the minimum, the
  /// standard noise-robust estimator for microsecond-scale regions).
  size_t timing_reps = 3;

  uint64_t seed = 7;
};

/// One sink's measurement — a point in Figs. 7(a) and 7(b).
struct SinkMeasurement {
  graph::NodeId sink = 0;
  uint64_t d = 0;              ///< Total path length from all sources.
  size_t subgraph_nodes = 0;   ///< |H| for Fig. 7(b).
  uint32_t subgraph_depth = 0;
  double resolve_us = 0.0;     ///< Resolve() CPU time (literal engine).
  double dominance_us = 0.0;   ///< Dominance() mean over placements.
  /// Work units, for a substrate-independent comparison: tuples the
  /// literal Propagate() processed vs nodes the baseline visited
  /// (mean over placements). On the paper's DBMS substrate both units
  /// cost about the same, which is where its +27% lives.
  uint64_t resolve_tuples = 0;
  double dominance_steps = 0.0;
  acm::Mode resolve_mode = acm::Mode::kNegative;
};

/// Aggregates of one experiment run.
struct EnterpriseExperimentResult {
  std::vector<SinkMeasurement> rows;
  double resolve_mean_us = 0.0;
  double dominance_mean_us = 0.0;
  /// (resolve_mean / dominance_mean - 1) * 100 — the paper reports 27%.
  double resolve_overhead_pct = 0.0;
  /// Same ratio computed over work units instead of wall-clock.
  double resolve_work_overhead_pct = 0.0;
  EnterpriseStats hierarchy_stats;
};

StatusOr<EnterpriseExperimentResult> RunEnterpriseExperiment(
    const EnterpriseExperimentOptions& options);

}  // namespace ucr::workload

#endif  // UCR_WORKLOAD_EXPERIMENTS_H_
