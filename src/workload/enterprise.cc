#include "workload/enterprise.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "graph/ancestor_subgraph.h"

namespace ucr::workload {

namespace {

/// Picks an index in [0, n) with probability proportional to
/// (level[i]+1)^bias — deeper nodes are likelier targets.
size_t PickBiased(const std::vector<size_t>& candidates,
                  const std::vector<size_t>& level, double bias, Random& rng) {
  if (bias <= 0.0) {
    return candidates[rng.Uniform(candidates.size())];
  }
  double total = 0.0;
  for (size_t c : candidates) {
    total += std::pow(static_cast<double>(level[c] + 1), bias);
  }
  double pick = rng.NextDouble() * total;
  for (size_t c : candidates) {
    pick -= std::pow(static_cast<double>(level[c] + 1), bias);
    if (pick <= 0.0) return c;
  }
  return candidates.back();
}

}  // namespace

StatusOr<graph::Dag> GenerateEnterpriseHierarchy(
    const EnterpriseOptions& options, Random& rng) {
  if (options.top_level_groups == 0 ||
      options.groups < options.top_level_groups) {
    return Status::InvalidArgument(
        "need at least one top-level group and groups >= top_level_groups");
  }
  if (options.individuals == 0) {
    return Status::InvalidArgument("need at least one individual");
  }
  if (options.max_group_depth == 0) {
    return Status::InvalidArgument("max_group_depth must be >= 1");
  }

  graph::DagBuilder builder;
  const size_t n_groups = options.groups;
  const size_t n_users = options.individuals;

  // Node layout: groups first (roots among them), then users.
  // level[] holds each node's depth; edges only go to strictly deeper
  // nodes, guaranteeing acyclicity.
  std::vector<size_t> level(n_groups + n_users, 0);
  for (size_t i = 0; i < options.top_level_groups; ++i) {
    builder.AddNode("dept" + std::to_string(i));
  }
  for (size_t i = options.top_level_groups; i < n_groups; ++i) {
    builder.AddNode("grp" + std::to_string(i));
  }
  for (size_t i = 0; i < n_users; ++i) {
    builder.AddNode("user" + std::to_string(i));
  }

  // Primary membership for nested groups: parent among groups created
  // earlier (guaranteeing a connected, level-consistent nesting).
  // Depths spread across 1..max_group_depth because parents are drawn
  // from all earlier groups, shallow and deep alike.
  for (size_t g = options.top_level_groups; g < n_groups; ++g) {
    const size_t parent = rng.Uniform(g);  // Any earlier group.
    if (level[parent] >= options.max_group_depth - 1) {
      // Too deep to nest under; attach to a random root instead.
      const size_t root = rng.Uniform(options.top_level_groups);
      UCR_RETURN_IF_ERROR(builder.AddEdgeById(
          static_cast<graph::NodeId>(root), static_cast<graph::NodeId>(g)));
      level[g] = 1;
    } else {
      UCR_RETURN_IF_ERROR(builder.AddEdgeById(
          static_cast<graph::NodeId>(parent), static_cast<graph::NodeId>(g)));
      level[g] = level[parent] + 1;
    }
  }

  // Primary membership for users, biased toward deep groups.
  std::vector<size_t> all_groups(n_groups);
  for (size_t i = 0; i < n_groups; ++i) all_groups[i] = i;
  for (size_t u = 0; u < n_users; ++u) {
    const size_t user_node = n_groups + u;
    const size_t parent =
        PickBiased(all_groups, level, options.depth_bias, rng);
    UCR_RETURN_IF_ERROR(
        builder.AddEdgeById(static_cast<graph::NodeId>(parent),
                            static_cast<graph::NodeId>(user_node)));
    level[user_node] = level[parent] + 1;
  }

  // Extra memberships up to the edge target: a random node joins a
  // random *shallower* group (level order keeps the graph acyclic).
  const size_t primary_edges = (n_groups - options.top_level_groups) + n_users;
  size_t extra_needed = options.target_edges > primary_edges
                            ? options.target_edges - primary_edges
                            : 0;
  size_t attempts = extra_needed * 20 + 100;  // Duplicate-draw headroom.
  while (extra_needed > 0 && attempts-- > 0) {
    const size_t child = rng.Uniform(n_groups + n_users);
    if (level[child] == 0) continue;  // Roots have no parents.
    const size_t parent = rng.Uniform(n_groups);
    if (level[parent] >= level[child]) continue;  // Keep edges downward.
    Status s = builder.AddEdgeById(static_cast<graph::NodeId>(parent),
                                   static_cast<graph::NodeId>(child));
    if (s.code() == StatusCode::kAlreadyExists) continue;
    UCR_RETURN_IF_ERROR(s);
    --extra_needed;
  }

  return std::move(builder).Build();
}

EnterpriseStats ComputeEnterpriseStats(const graph::Dag& dag) {
  EnterpriseStats stats;
  stats.nodes = dag.node_count();
  stats.edges = dag.edge_count();
  stats.roots = dag.Roots().size();
  const std::vector<graph::NodeId> sinks = dag.Sinks();
  stats.sinks = sinks.size();
  stats.min_sink_depth = UINT32_MAX;
  stats.max_sink_depth = 0;
  for (graph::NodeId sink : sinks) {
    const graph::AncestorSubgraph sub(dag, sink);
    stats.min_sink_depth = std::min(stats.min_sink_depth, sub.depth());
    stats.max_sink_depth = std::max(stats.max_sink_depth, sub.depth());
  }
  if (sinks.empty()) stats.min_sink_depth = 0;
  return stats;
}

}  // namespace ucr::workload
