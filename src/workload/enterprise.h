#ifndef UCR_WORKLOAD_ENTERPRISE_H_
#define UCR_WORKLOAD_ENTERPRISE_H_

#include <cstddef>
#include <cstdint>

#include "graph/dag.h"
#include "util/random.h"
#include "util/status.h"

namespace ucr::workload {

/// Options for `GenerateEnterpriseHierarchy`. The defaults reproduce
/// the published shape statistics of the Livelink installation the
/// paper evaluated (§4): >8000 nodes, ~22,000 edges, 1582 sinks
/// (individual users), induced sub-graph depths ranging 1–11.
struct EnterpriseOptions {
  /// Individual users — the sinks of the hierarchy.
  size_t individuals = 1582;

  /// Group nodes (departments, teams, roles, mailing lists, ...).
  size_t groups = 6500;

  /// Top-level groups (roots): org-level containers.
  size_t top_level_groups = 60;

  /// Maximum nesting level of groups. Users attach below groups, so
  /// induced sub-graph depths reach max_group_depth + 1.
  size_t max_group_depth = 10;

  /// Target number of edges. Primary membership contributes one edge
  /// per non-root node; the remainder are extra memberships (a group
  /// or user belonging to several groups), which is what makes real
  /// subject hierarchies DAGs rather than trees.
  size_t target_edges = 22000;

  /// Bias of membership toward deep (specific) groups, mimicking real
  /// installations where most users sit in leaf teams. 0 = uniform.
  double depth_bias = 1.5;
};

/// Shape statistics of a generated hierarchy, for validation against
/// the paper's published numbers.
struct EnterpriseStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t sinks = 0;
  size_t roots = 0;
  uint32_t min_sink_depth = 0;  ///< Depth of the shallowest user sub-graph.
  uint32_t max_sink_depth = 0;  ///< Depth of the deepest user sub-graph.
};

/// \brief Generates a synthetic enterprise subject hierarchy standing
/// in for the proprietary Livelink data (see DESIGN.md, Substitution).
///
/// Construction is levelized — every edge points from a shallower
/// group to a strictly deeper node — so acyclicity holds by
/// construction (and is re-validated by DagBuilder). Deterministic
/// given `rng`'s seed.
///
/// Node names: "dept<i>" for roots, "grp<i>" for nested groups,
/// "user<i>" for individuals.
StatusOr<graph::Dag> GenerateEnterpriseHierarchy(
    const EnterpriseOptions& options, Random& rng);

/// Computes shape statistics (extracts every sink's sub-graph; O(sinks
/// × subgraph) — intended for tests and reporting, not hot paths).
EnterpriseStats ComputeEnterpriseStats(const graph::Dag& dag);

}  // namespace ucr::workload

#endif  // UCR_WORKLOAD_ENTERPRISE_H_
