#include "workload/experiments.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "acm/acm.h"
#include "acm/assignment.h"
#include "core/dominance.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace ucr::workload {

namespace {

using acm::ExplicitAcm;
using acm::Mode;
using graph::AncestorSubgraph;
using graph::Dag;

/// The propagation sources of `sub` given `labels`: explicitly labeled
/// members plus unlabeled roots (which carry the 'd' marker). Their
/// total path length to the sink is the paper's cost metric `d`.
uint64_t MeasureD(const AncestorSubgraph& sub,
                  std::span<const std::optional<Mode>> labels) {
  std::vector<graph::LocalId> sources;
  for (graph::LocalId v = 0; v < sub.member_count(); ++v) {
    if (labels[sub.global_id(v)].has_value() || sub.parents(v).empty()) {
      sources.push_back(v);
    }
  }
  return sub.TotalPathLength(sources);
}

}  // namespace

StatusOr<std::vector<KdagSweepRow>> RunKdagSweep(
    const KdagSweepOptions& options) {
  if (options.rate_step <= 0.0 || options.rate_min <= 0.0 ||
      options.rate_max < options.rate_min) {
    return Status::InvalidArgument("malformed rate sweep bounds");
  }
  if (options.repetitions == 0) {
    return Status::InvalidArgument("need at least one repetition");
  }

  std::vector<double> rates;
  for (double rate = options.rate_min; rate <= options.rate_max + 1e-12;
       rate += options.rate_step) {
    rates.push_back(rate);
  }

  std::vector<KdagSweepRow> rows;
  Random rng(options.seed);
  for (size_t n : options.sizes) {
    // The paper draws a fresh random KDAG per configuration; for a
    // complete DAG the structure is unique up to node identity, so one
    // graph per size serves every rate point.
    UCR_ASSIGN_OR_RETURN(const Dag dag, graph::GenerateKDag(n, rng));
    const size_t edge_count = dag.edge_count();
    std::vector<graph::NodeId> edge_sources;
    edge_sources.reserve(edge_count);
    for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
      for (size_t i = 0; i < dag.children(v).size(); ++i) {
        edge_sources.push_back(v);
      }
    }
    // The KDAG sink is its last node by construction ("K<n-1>").
    const graph::NodeId sink = static_cast<graph::NodeId>(n - 1);
    const AncestorSubgraph sub(dag, sink);

    std::vector<RunningStats> time_us(rates.size());
    std::vector<RunningStats> tuples(rates.size());
    std::vector<RunningStats> labeled(rates.size());

    for (size_t rep = 0; rep < options.repetitions; ++rep) {
      // Common random numbers across the rate sweep: one edge
      // permutation per repetition, each rate labels a prefix of it —
      // the marginal per-point distribution matches independent
      // sampling while the rate curve within a repetition is monotone,
      // which is what makes the published linear trend visible at
      // modest repetition counts (KDAG source costs are heavy-tailed).
      const std::vector<size_t> perm =
          rng.SampleWithoutReplacement(edge_count, edge_count);
      for (size_t ri = 0; ri < rates.size(); ++ri) {
        size_t to_draw = static_cast<size_t>(std::llround(
            rates[ri] * static_cast<double>(edge_count)));
        to_draw = std::max<size_t>(1, std::min(to_draw, edge_count));

        ExplicitAcm eacm;
        UCR_ASSIGN_OR_RETURN(const acm::ObjectId obj,
                             eacm.InternObject("obj"));
        UCR_ASSIGN_OR_RETURN(const acm::RightId read,
                             eacm.InternRight("read"));
        size_t count = 0;
        for (size_t e = 0; e < to_draw; ++e) {
          const graph::NodeId source = edge_sources[perm[e]];
          if (eacm.Get(source, obj, read).has_value()) continue;
          UCR_RETURN_IF_ERROR(eacm.Set(source, obj, read,
                                       (count % 2 == 0) ? Mode::kPositive
                                                        : Mode::kNegative));
          ++count;
        }
        labeled[ri].Add(static_cast<double>(count));

        const std::vector<std::optional<Mode>> labels =
            eacm.ExtractLabels(dag.node_count(), obj, read);
        core::PropagateStats stats;
        Stopwatch watch;
        auto bag = core::PropagateLiteral(sub, labels, {}, &stats,
                                          options.max_tuples);
        const double elapsed = watch.ElapsedMicros();
        UCR_RETURN_IF_ERROR(bag.status());
        time_us[ri].Add(elapsed);
        tuples[ri].Add(static_cast<double>(stats.tuples_processed));
      }
    }

    for (size_t ri = 0; ri < rates.size(); ++ri) {
      KdagSweepRow row;
      row.n = n;
      row.rate = rates[ri];
      row.repetitions = options.repetitions;
      row.mean_us = time_us[ri].Mean();
      row.stddev_us = time_us[ri].StdDev();
      row.mean_tuples = tuples[ri].Mean();
      row.mean_labeled = labeled[ri].Mean();
      rows.push_back(row);
    }
  }
  return rows;
}

StatusOr<EnterpriseExperimentResult> RunEnterpriseExperiment(
    const EnterpriseExperimentOptions& options) {
  core::Strategy strategy;
  if (options.strategy.has_value()) {
    strategy = options.strategy->Canonical();
  } else {
    UCR_ASSIGN_OR_RETURN(strategy, core::ParseStrategy("D+LP-"));
  }
  if (strategy.locality_rule != core::LocalityRule::kMostSpecific ||
      strategy.majority_rule != core::MajorityRule::kSkip) {
    return Status::InvalidArgument(
        "Dominance() evaluates the D*LP*/LP* family only; strategy must use "
        "most-specific locality and no majority policy");
  }
  if (options.negative_fractions.empty()) {
    return Status::InvalidArgument("need at least one negative fraction");
  }

  Random rng(options.seed);
  UCR_ASSIGN_OR_RETURN(const Dag dag,
                       GenerateEnterpriseHierarchy(options.enterprise, rng));

  // One EACM per negative-placement trial, labeling the *same*
  // subjects (identical RNG stream) so placement is the only variable.
  std::vector<ExplicitAcm> eacms;
  std::vector<std::vector<std::optional<Mode>>> label_views;
  acm::ObjectId obj = 0;
  acm::RightId read = 0;
  const uint64_t assign_seed = rng.NextU64();
  for (double neg : options.negative_fractions) {
    ExplicitAcm eacm;
    UCR_ASSIGN_OR_RETURN(obj, eacm.InternObject("obj"));
    UCR_ASSIGN_OR_RETURN(read, eacm.InternRight("read"));
    acm::RandomAssignmentOptions assign;
    assign.authorization_rate = options.authorization_rate;
    assign.negative_fraction = neg;
    Random assign_rng(assign_seed);
    UCR_RETURN_IF_ERROR(acm::AssignRandomAuthorizations(
                            dag, obj, read, assign, assign_rng, &eacm)
                            .status());
    label_views.push_back(eacm.ExtractLabels(dag.node_count(), obj, read));
    eacms.push_back(std::move(eacm));
  }

  // Measure individual users, as the paper did ("1582 sinks
  // (individual users), each of which represents a real-world
  // sample"). Childless groups are technically sinks too but are not
  // users; fall back to all sinks for hierarchies without user nodes.
  std::vector<graph::NodeId> sinks;
  for (graph::NodeId v : dag.Sinks()) {
    if (dag.name(v).rfind("user", 0) == 0) sinks.push_back(v);
  }
  if (sinks.empty()) sinks = dag.Sinks();
  if (options.max_sinks > 0 && sinks.size() > options.max_sinks) {
    sinks.resize(options.max_sinks);
  }

  const size_t reps = std::max<size_t>(1, options.timing_reps);
  EnterpriseExperimentResult result;
  RunningStats resolve_stats;
  RunningStats dominance_stats;

  for (graph::NodeId sink : sinks) {
    const AncestorSubgraph sub(dag, sink);
    SinkMeasurement m;
    m.sink = sink;
    m.subgraph_nodes = sub.member_count();
    m.subgraph_depth = sub.depth();
    // Resolve()'s propagation work is placement-independent (the tuple
    // flow ignores label signs), so measure it on the first trial.
    m.d = MeasureD(sub, label_views[0]);

    double best_resolve = 0.0;
    for (size_t rep = 0; rep < reps; ++rep) {
      core::PropagateStats pstats;
      Stopwatch watch;
      auto bag = core::PropagateLiteral(sub, label_views[0], {}, &pstats);
      UCR_RETURN_IF_ERROR(bag.status());
      m.resolve_mode = core::Resolve(*bag, strategy);
      const double us = watch.ElapsedMicros();
      best_resolve = rep == 0 ? us : std::min(best_resolve, us);
      m.resolve_tuples = pstats.tuples_processed;
    }
    m.resolve_us = best_resolve;

    // Dominance(): mean over the placement trials (paper: three
    // trials averaged per data point). The baseline is the per-path
    // reconstruction, whose cost is placement-dependent exactly as the
    // paper describes; see core::DominancePathwise.
    const core::PreferenceRule pref = strategy.preference_rule;
    const core::DefaultRule def = strategy.default_rule;
    RunningStats per_sink;
    RunningStats per_sink_steps;
    for (size_t trial = 0; trial < eacms.size(); ++trial) {
      double best = 0.0;
      for (size_t rep = 0; rep < reps; ++rep) {
        core::DominanceStats dstats;
        Stopwatch watch;
        auto baseline = core::DominancePathwise(
            dag, label_views[trial], sink, def, pref, &dstats,
            /*max_steps=*/500'000'000);
        const double us = watch.ElapsedMicros();
        UCR_RETURN_IF_ERROR(baseline.status());
        best = rep == 0 ? us : std::min(best, us);
        if (rep == 0) {
          per_sink_steps.Add(static_cast<double>(dstats.nodes_visited));
        }
      }
      per_sink.Add(best);
    }
    m.dominance_us = per_sink.Mean();
    m.dominance_steps = per_sink_steps.Mean();

    resolve_stats.Add(m.resolve_us);
    dominance_stats.Add(m.dominance_us);
    result.rows.push_back(m);
  }

  result.resolve_mean_us = resolve_stats.Mean();
  result.dominance_mean_us = dominance_stats.Mean();
  result.resolve_overhead_pct =
      result.dominance_mean_us > 0.0
          ? (result.resolve_mean_us / result.dominance_mean_us - 1.0) * 100.0
          : 0.0;
  RunningStats work_resolve;
  RunningStats work_dominance;
  for (const SinkMeasurement& m : result.rows) {
    work_resolve.Add(static_cast<double>(m.resolve_tuples));
    work_dominance.Add(m.dominance_steps);
  }
  result.resolve_work_overhead_pct =
      work_dominance.Mean() > 0.0
          ? (work_resolve.Mean() / work_dominance.Mean() - 1.0) * 100.0
          : 0.0;
  result.hierarchy_stats = ComputeEnterpriseStats(dag);
  return result;
}

}  // namespace ucr::workload
