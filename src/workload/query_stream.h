#ifndef UCR_WORKLOAD_QUERY_STREAM_H_
#define UCR_WORKLOAD_QUERY_STREAM_H_

#include <vector>

#include "acm/acm.h"
#include "core/system.h"
#include "graph/dag.h"
#include "util/random.h"
#include "util/status.h"

namespace ucr::workload {

/// How query subjects are drawn.
enum class SubjectDistribution {
  kUniform = 0,  ///< Every candidate subject equally likely.
  kHotSet = 1,   ///< A small hot set takes most of the traffic.
  kZipf = 2,     ///< Rank-r candidate drawn with weight 1/r^s.
};

/// Options for `GenerateQueryStream`.
struct QueryStreamOptions {
  size_t count = 10000;
  SubjectDistribution distribution = SubjectDistribution::kHotSet;

  /// kHotSet: size of the hot set and the fraction of queries it gets.
  size_t hot_set_size = 16;
  double hot_fraction = 0.8;

  /// kZipf: the exponent (1.0 = classic Zipf).
  double zipf_exponent = 1.0;

  /// Restrict subjects to sinks (individuals), like real check traffic.
  bool sinks_only = true;

  uint64_t seed = 1;
};

/// \brief Generates a deterministic access-check workload against a
/// populated system: subjects drawn per `distribution`, objects and
/// rights uniformly over the matrix's interned ids. Requires at least
/// one object and right to exist.
StatusOr<std::vector<core::AccessControlSystem::AccessQuery>>
GenerateQueryStream(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                    const QueryStreamOptions& options);

}  // namespace ucr::workload

#endif  // UCR_WORKLOAD_QUERY_STREAM_H_
