#include "workload/query_stream.h"

#include <cmath>

namespace ucr::workload {

StatusOr<std::vector<core::AccessControlSystem::AccessQuery>>
GenerateQueryStream(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                    const QueryStreamOptions& options) {
  if (eacm.object_count() == 0 || eacm.right_count() == 0) {
    return Status::FailedPrecondition(
        "the matrix has no objects/rights to query");
  }
  std::vector<graph::NodeId> candidates =
      options.sinks_only ? dag.Sinks() : [&] {
        std::vector<graph::NodeId> all(dag.node_count());
        for (graph::NodeId v = 0; v < dag.node_count(); ++v) all[v] = v;
        return all;
      }();
  if (candidates.empty()) {
    return Status::FailedPrecondition("no candidate subjects");
  }
  if (options.distribution == SubjectDistribution::kHotSet &&
      (options.hot_set_size == 0 || options.hot_fraction < 0.0 ||
       options.hot_fraction > 1.0)) {
    return Status::InvalidArgument("malformed hot-set parameters");
  }

  Random rng(options.seed);

  // Per-distribution subject sampler.
  std::vector<graph::NodeId> hot;
  std::vector<double> zipf_cdf;
  switch (options.distribution) {
    case SubjectDistribution::kUniform:
      break;
    case SubjectDistribution::kHotSet:
      for (size_t i = 0; i < options.hot_set_size; ++i) {
        hot.push_back(candidates[rng.Uniform(candidates.size())]);
      }
      break;
    case SubjectDistribution::kZipf: {
      // Candidate rank = position after a deterministic shuffle, so
      // the hot ranks are not correlated with node ids.
      rng.Shuffle(candidates);
      double total = 0.0;
      zipf_cdf.reserve(candidates.size());
      for (size_t r = 0; r < candidates.size(); ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1),
                                options.zipf_exponent);
        zipf_cdf.push_back(total);
      }
      for (double& c : zipf_cdf) c /= total;
      break;
    }
  }

  auto draw_subject = [&]() -> graph::NodeId {
    switch (options.distribution) {
      case SubjectDistribution::kUniform:
        return candidates[rng.Uniform(candidates.size())];
      case SubjectDistribution::kHotSet:
        if (rng.Bernoulli(options.hot_fraction)) {
          return hot[rng.Uniform(hot.size())];
        }
        return candidates[rng.Uniform(candidates.size())];
      case SubjectDistribution::kZipf: {
        const double u = rng.NextDouble();
        const auto it =
            std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u);
        const size_t rank = it == zipf_cdf.end()
                                ? zipf_cdf.size() - 1
                                : static_cast<size_t>(it - zipf_cdf.begin());
        return candidates[rank];
      }
    }
    return candidates.front();
  };

  std::vector<core::AccessControlSystem::AccessQuery> queries;
  queries.reserve(options.count);
  for (size_t q = 0; q < options.count; ++q) {
    queries.push_back(core::AccessControlSystem::AccessQuery{
        draw_subject(),
        static_cast<acm::ObjectId>(rng.Uniform(eacm.object_count())),
        static_cast<acm::RightId>(rng.Uniform(eacm.right_count()))});
  }
  return queries;
}

}  // namespace ucr::workload
