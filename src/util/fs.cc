#include "util/fs.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace ucr {

namespace {

long g_write_limit = -1;

Status ErrnoStatus(const char* what, const std::string& path) {
  return Status::Corruption(std::string(what) + " failed for '" + path +
                            "': " + std::strerror(errno));
}

int RetryingFsync(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

/// Directory of `path` ("." when the path has no slash).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void SetAtomicWriteLimitForTesting(long limit) { g_write_limit = limit; }

Status WriteAllToFd(int fd, std::string_view contents,
                    const std::string& path) {
  const char* data = contents.data();
  size_t size = contents.size();
  if (g_write_limit >= 0 && size > static_cast<size_t>(g_write_limit)) {
    // Simulated device-full: persist the allowed prefix (a real ENOSPC
    // leaves partial bytes behind too), then fail.
    size_t allowed = static_cast<size_t>(g_write_limit);
    while (allowed > 0) {
      const ssize_t n = ::write(fd, data, allowed);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      data += n;
      allowed -= static_cast<size_t>(n);
    }
    return Status::Corruption("write failed for '" + path +
                              "': No space left on device (injected)");
  }
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  // Unique per process *and* per call (atomic counter) so concurrent
  // savers of the same path — threads in one process or separate
  // processes — never clobber each other's temp file.
  static std::atomic<uint64_t> save_seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(save_seq.fetch_add(1, std::memory_order_relaxed));
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);

  Status status = WriteAllToFd(fd, contents, tmp);
  if (status.ok() && RetryingFsync(fd) != 0) status = ErrnoStatus("fsync", tmp);
  if (::close(fd) != 0 && status.ok()) status = ErrnoStatus("close", tmp);
  if (!status.ok()) {
    ::unlink(tmp.c_str());  // Best effort; the target is untouched.
    return status;
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = ErrnoStatus("rename", tmp);
    ::unlink(tmp.c_str());
    return st;
  }

  // The rename is only durable once the directory entry is: fsync the
  // containing directory (ignore EACCES-style failures on exotic
  // filesystems that refuse O_RDONLY directory fds — the data itself
  // is already synced).
  const int dir_fd =
      ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    RetryingFsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) != 0) {
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = ErrnoStatus("read", path);
      ::close(fd);
      return st;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoStatus("fstat", path);
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference.
  if (data == MAP_FAILED) return ErrnoStatus("mmap", path);
  return MappedFile(data, size);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace ucr
