#ifndef UCR_UTIL_ALLOC_COUNTER_H_
#define UCR_UTIL_ALLOC_COUNTER_H_

#include <cstdint>

namespace ucr {

/// \brief Number of global `operator new` invocations (all forms)
/// since process start.
///
/// Only available in binaries that link `ucr_alloc_counter`, whose
/// translation unit replaces the global allocation functions with
/// counting wrappers around malloc/free. The counter is process-wide
/// and atomic; diff two samples around a region to measure its heap
/// traffic (`bench/hotpath` and the allocation-regression test assert
/// the hot path's steady state allocates nothing).
uint64_t AllocationCount();

/// Publishes the current `AllocationCount()` into the metrics registry
/// as the gauge `ucr_heap_allocations`, so snapshots emitted by
/// measuring binaries (bench `--smoke`, `ucr_admin metrics`) carry the
/// allocator's view next to the query counters. No-op with metrics
/// compiled out.
void PublishAllocationGauge();

}  // namespace ucr

#endif  // UCR_UTIL_ALLOC_COUNTER_H_
