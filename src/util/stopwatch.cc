#include "util/stopwatch.h"

// Header-only; this translation unit exists so the target has a stable
// archive member and the header is compiled standalone at least once.
