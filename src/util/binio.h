#ifndef UCR_UTIL_BINIO_H_
#define UCR_UTIL_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ucr::bin {

// Little-endian, byte-at-a-time binary encoding shared by every durable
// format in the repository (WAL records, binary snapshots). Explicit
// byte shifts instead of memcpy-of-struct keep the on-disk layout
// independent of host endianness and padding, and the bounds-checked
// Reader turns any truncated or hostile input into a clean parse
// failure instead of UB — the loader fuzz tests rely on that.

inline void AppendU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

inline void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Length-prefixed string: u32 byte count + raw bytes.
inline void AppendString(std::string_view s, std::string* out) {
  AppendU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

/// Patches a previously appended u32 at `offset` (for length/CRC slots
/// whose value is only known after the payload is written).
inline void PatchU32(std::string* out, size_t offset, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    (*out)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

/// \brief Bounds-checked forward reader over an in-memory byte span.
///
/// Every accessor returns false (leaving the output untouched) instead
/// of reading past the end; `ok()` latches the first failure so callers
/// can batch reads and check once.
class Reader {
 public:
  Reader(const void* data, size_t size)
      : p_(static_cast<const unsigned char*>(data)), end_(p_ + size) {}
  explicit Reader(std::string_view bytes) : Reader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  const unsigned char* cursor() const { return p_; }

  bool ReadU16(uint16_t* v) {
    if (!Require(2)) return false;
    *v = static_cast<uint16_t>(p_[0] | (p_[1] << 8));
    p_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (!Require(4)) return false;
    *v = static_cast<uint32_t>(p_[0]) | (static_cast<uint32_t>(p_[1]) << 8) |
         (static_cast<uint32_t>(p_[2]) << 16) |
         (static_cast<uint32_t>(p_[3]) << 24);
    p_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

  /// Reads a u32-length-prefixed string (AppendString's format).
  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (!Require(len)) return false;
    out->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return true;
  }

  /// Views `size` raw bytes without copying; fails if short.
  bool ReadBytes(size_t size, std::string_view* out) {
    if (!Require(size)) return false;
    *out = std::string_view(reinterpret_cast<const char*>(p_), size);
    p_ += size;
    return true;
  }

  bool Skip(size_t size) {
    if (!Require(size)) return false;
    p_ += size;
    return true;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;
};

}  // namespace ucr::bin

#endif  // UCR_UTIL_BINIO_H_
