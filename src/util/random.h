#ifndef UCR_UTIL_RANDOM_H_
#define UCR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ucr {

/// \brief Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// The standard `<random>` engines are not guaranteed to produce the
/// same streams across library implementations; experiments must be
/// bit-reproducible across platforms, so the library carries its own
/// generator. Not cryptographically secure, and not thread-safe —
/// use one instance per thread.
class Random {
 public:
  /// Seeds the generator. Equal seeds yield equal streams everywhere.
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a uniformly distributed integer in [0, bound).
  /// `bound` must be positive. Uses rejection sampling (no modulo bias).
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniformly distributed integer in [lo, hi] inclusive.
  /// Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  /// If k >= n, returns a permutation of all n indices.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace ucr

#endif  // UCR_UTIL_RANDOM_H_
