#include "util/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace ucr {

namespace {

/// Process-wide pool telemetry, summed over every live pool: gauges
/// track instantaneous queue depth and busy workers, the counter
/// totals executed tasks. Registered once; updates are relaxed
/// atomics, so the dispatch path stays as cheap as before.
struct PoolMetrics {
  obs::Gauge& queued = obs::Registry::Global().GetGauge(
      "ucr_threadpool_queued_tasks",
      "Tasks submitted to thread pools and not yet started");
  obs::Gauge& active = obs::Registry::Global().GetGauge(
      "ucr_threadpool_active_workers",
      "Pool workers currently executing a task");
  obs::Counter& tasks = obs::Registry::Global().GetCounter(
      "ucr_threadpool_tasks_total", "Tasks executed by pool workers");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(size_t thread_count) {
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline pool: run now; nothing for Wait() to wait on.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) Metrics().queued.Add(1);
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      Metrics().queued.Sub(1);
      Metrics().active.Add(1);
    }
    task();
    active_.fetch_sub(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      Metrics().active.Sub(1);
      Metrics().tasks.Inc();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (end <= begin) return;
  const size_t count = end - begin;
  if (workers_.empty() || count == 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Dynamic scheduling: workers and the caller race on one shared
  // index counter, so an expensive iteration never strands cheap ones
  // behind it. The completion latch is per-call, making concurrent
  // Submit() traffic on the same pool harmless.
  struct LoopState {
    std::atomic<size_t> next;
    std::mutex mu;
    std::condition_variable done;
    size_t pending;
    explicit LoopState(size_t start, size_t fanout)
        : next(start), pending(fanout) {}
  };
  const size_t fanout = workers_.size() < count ? workers_.size() : count;
  auto state = std::make_shared<LoopState>(begin, fanout);

  const auto drain = [state, end, &body] {
    for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
         i < end; i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  };
  for (size_t t = 0; t < fanout; ++t) {
    Submit([state, end, body] {  // Copies body: it may outlive the caller's
                                 // stack frame only via these tasks.
      for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
           i < end; i = state->next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending == 0) state->done.notify_all();
    });
  }
  drain();  // The caller participates instead of blocking idle.
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->pending == 0; });
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace ucr
