#ifndef UCR_UTIL_TABLE_PRINTER_H_
#define UCR_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ucr {

/// \brief Renders rows of strings as an aligned ASCII table.
///
/// Benchmark binaries use this to print the paper's tables in a shape
/// directly comparable to the publication. Example output:
///
///     subject | object | right | dis | mode
///     --------+--------+-------+-----+-----
///     User    | obj    | read  | 1   | -
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as headers.
  /// Extra cells are dropped, missing cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows added.
  size_t row_count() const { return rows_.size(); }

  /// Writes the formatted table to `os`.
  void Print(std::ostream& os) const;

  /// Returns the formatted table as a string.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ucr

#endif  // UCR_UTIL_TABLE_PRINTER_H_
