#ifndef UCR_UTIL_STOPWATCH_H_
#define UCR_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ucr {

/// \brief Monotonic wall-clock stopwatch for experiment timing.
///
/// Uses `steady_clock`; resolution is platform-dependent but at worst
/// tens of nanoseconds on the platforms we target. Benchmarks that need
/// statistical treatment should sample many runs (see `stats.h`).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds (fractional).
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ucr

#endif  // UCR_UTIL_STOPWATCH_H_
