#include "util/random.h"

#include <cassert>

namespace ucr {

namespace {

// splitmix64: expands a single seed into well-distributed engine state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state would lock the generator at zero; splitmix cannot
  // produce four zero words from any seed, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Random::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 high bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Random::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) {
    Shuffle(all);
    return all;
  }
  // Partial Fisher–Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    using std::swap;
    swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace ucr
