// Counting replacements for the global allocation functions. Linked
// ONLY into binaries that measure heap traffic (bench/hotpath, the
// allocation-regression test); production targets keep the default
// allocator untouched.

#include "util/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.h"

namespace ucr {
namespace alloc_counter_internal {

std::atomic<uint64_t> g_news{0};

}  // namespace alloc_counter_internal

uint64_t AllocationCount() {
  return alloc_counter_internal::g_news.load(std::memory_order_relaxed);
}

void PublishAllocationGauge() {
  if constexpr (obs::kEnabled) {
    static obs::Gauge& gauge = obs::Registry::Global().GetGauge(
        "ucr_heap_allocations",
        "Global operator new invocations since process start (only in "
        "binaries linking the counting allocator)");
    gauge.Set(static_cast<int64_t>(AllocationCount()));
  }
}

}  // namespace ucr

namespace {

// Threads inside an obs::ScopedAllocExclusion scope (audit-writer
// formatting, sampled shadow-oracle re-resolution) allocate off the
// books: their traffic is deliberate observability work, not hot-path
// leakage, and excluding it keeps the 0-allocs/query bound meaningful
// with sampling enabled.
void CountOne() noexcept {
  if (ucr::obs::AllocCountingSuspended()) return;
  ucr::alloc_counter_internal::g_news.fetch_add(1, std::memory_order_relaxed);
}

void* CountedAllocate(std::size_t size) noexcept {
  CountOne();
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* CountedAllocateAligned(std::size_t size, std::size_t align) noexcept {
  CountOne();
  if (size == 0) size = align;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAllocate(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAllocate(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAllocate(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAllocateAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAllocateAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAllocateAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAllocateAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
