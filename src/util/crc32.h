#ifndef UCR_UTIL_CRC32_H_
#define UCR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ucr {

/// \brief CRC-32 (IEEE 802.3, the zlib polynomial), slice-by-4.
///
/// Guards the durable storage formats (core/wal.h, the binary
/// snapshot): every length-prefixed record and every snapshot section
/// carries the checksum of its payload, so a torn write or bit rot is
/// detected as `kCorruption` instead of being replayed into the
/// hierarchy. Dependency-free by design — the repository bakes in no
/// compression or hashing libraries.
///
/// `Crc32(data, size)` is the one-shot form; the (crc, data, size)
/// overload continues a running checksum (pass the previous return
/// value), so multi-section writers can checksum without concatenating.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

inline uint32_t Crc32(std::string_view text) {
  return Crc32Update(0, text.data(), text.size());
}

}  // namespace ucr

#endif  // UCR_UTIL_CRC32_H_
