#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ucr {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 2) return fit;
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;  // Vertical line; undefined slope.
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace ucr
