#ifndef UCR_UTIL_FS_H_
#define UCR_UTIL_FS_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ucr {

/// \brief Atomically replaces `path` with `contents`.
///
/// The crash-safe sequence: write a uniquely named temp file *in the
/// target's directory* (rename is only atomic within a filesystem),
/// check every write, fsync the temp file, rename over the target,
/// fsync the directory so the rename itself is durable. A crash or
/// ENOSPC at any point leaves the previous `path` byte-identical; the
/// orphaned temp file is the only possible debris.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// \brief write()s the whole buffer to `fd`, retrying on EINTR and
/// partial writes. Honors the test-injected short-write limit (see
/// `SetAtomicWriteLimitForTesting`), so callers like the WAL writer get
/// device-full fault injection for free. `path` is for error messages.
Status WriteAllToFd(int fd, std::string_view contents,
                    const std::string& path);

/// \brief Test hook: makes the next `WriteFileAtomic`/`WriteAllToFd`
/// calls fail after writing at most `limit` bytes of content,
/// simulating a device that fills mid-write (the torn-save regression
/// test). Negative disables. Not thread-safe — test-only.
void SetAtomicWriteLimitForTesting(long limit);

/// Reads an entire file. NotFound if it does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// \brief A read-only memory-mapped file.
///
/// The mapping's lifetime is the object's; `bytes()` views the file
/// contents without an up-front read — pages fault in on first touch,
/// which is what lets a multi-GB snapshot serve its first query
/// seconds after start. An empty file maps to an empty view.
class MappedFile {
 public:
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::string_view bytes() const {
    return {static_cast<const char*>(data_), size_};
  }

 private:
  MappedFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ucr

#endif  // UCR_UTIL_FS_H_
