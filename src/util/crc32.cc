#include "util/crc32.h"

#include <array>

namespace ucr {

namespace {

/// Four 256-entry tables, built once at first use: table[0] is the
/// classic byte-at-a-time table, tables 1..3 fold the next three bytes
/// so the hot loop consumes four bytes per iteration (slice-by-4;
/// several GB/s, fast enough that snapshot loads stay I/O-bound).
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32Tables() {
    constexpr uint32_t kPoly = 0xEDB88320u;  // Reflected IEEE polynomial.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables* tables = new Crc32Tables();
  return *tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace ucr
