#ifndef UCR_UTIL_THREAD_POOL_H_
#define UCR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ucr {

/// \brief A fixed-size thread pool — the execution substrate of the
/// parallel query-evaluation layer (batch resolution, parallel
/// effective-matrix materialization, throughput benchmarks).
///
/// Deliberately minimal: one shared FIFO queue, no work stealing, no
/// priorities, no task futures. The workloads it exists for (batches
/// of independent queries, independent matrix columns) are
/// embarrassingly parallel and chunk-balanced by `ParallelFor`'s
/// dynamic index counter, so a fancier scheduler buys nothing.
///
/// Thread-safety: `Submit`, `Wait`, and `ParallelFor` may be called
/// from any thread, but `ParallelFor` is not reentrant (a task must
/// not start a nested `ParallelFor` on the same pool — it would
/// deadlock waiting for workers that are busy running it).
class ThreadPool {
 public:
  /// Starts `thread_count` workers. 0 is allowed and means "no
  /// workers": every `ParallelFor` runs inline on the caller, which
  /// keeps call sites free of special cases.
  explicit ThreadPool(size_t thread_count);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  size_t thread_count() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Tasks submitted but not yet popped by a worker. Lock-free read
  /// (a relaxed atomic maintained alongside the queue), so monitoring
  /// never contends with the dispatch path.
  size_t queued_tasks() const {
    return queued_.load(std::memory_order_relaxed);
  }

  /// Workers currently executing a task. Lock-free read, same design.
  size_t active_workers() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// \brief Runs `body(i)` for every i in [begin, end), distributing
  /// indices dynamically over the workers *and* the calling thread,
  /// and returns when all indices are done.
  ///
  /// Iterations must be independent and must not throw; they may run
  /// in any order and on any thread. With no workers (or a single
  /// index) the loop runs inline, bit-identically to a serial loop.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// `hardware_concurrency` with a floor of 1 (the standard permits 0).
  static size_t DefaultThreadCount();

  /// Caps a requested executor count at the hardware concurrency:
  /// oversubscribing physical cores with CPU-bound query evaluation
  /// only adds context-switch overhead (measured in
  /// BENCH_throughput_parallel.json on a 1-CPU host). 0 stays 0
  /// ("inline", no workers).
  static size_t ClampToHardware(size_t threads) {
    const size_t hw = DefaultThreadCount();
    return threads < hw ? threads : hw;
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< Tasks popped but not yet finished.
  bool stopping_ = false;

  /// Mirrors of queue depth / busy workers, readable without the
  /// mutex; also published as registry gauges (DESIGN.md §8).
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> active_{0};
};

}  // namespace ucr

#endif  // UCR_UTIL_THREAD_POOL_H_
