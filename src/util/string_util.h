#ifndef UCR_UTIL_STRING_UTIL_H_
#define UCR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ucr {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; returns false on any non-digit or
/// overflow, leaving `out` untouched.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Parses a double via strtod semantics; whole string must be consumed.
bool ParseDouble(std::string_view s, double* out);

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

}  // namespace ucr

#endif  // UCR_UTIL_STRING_UTIL_H_
