#ifndef UCR_UTIL_STATS_H_
#define UCR_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace ucr {

/// \brief Streaming univariate summary statistics (Welford's method).
///
/// Numerically stable for long runs; O(1) per observation. Used by the
/// benchmark harnesses to aggregate repeated trials.
class RunningStats {
 public:
  RunningStats() = default;

  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  size_t count() const { return count_; }

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Unbiased sample variance; 0 with fewer than two observations.
  double Variance() const;

  /// Square root of Variance().
  double StdDev() const;

  /// Smallest observation; +inf when empty.
  double Min() const { return min_; }

  /// Largest observation; -inf when empty.
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// \brief Returns the q-quantile (0 <= q <= 1) of `values` by linear
/// interpolation between order statistics. Returns 0 for empty input.
/// Copies and sorts internally; intended for end-of-run reporting.
double Quantile(std::vector<double> values, double q);

/// \brief Ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination.
};

/// Fits a line through (x[i], y[i]). Requires x.size() == y.size() and
/// at least two points; returns a default (zero) fit otherwise.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace ucr

#endif  // UCR_UTIL_STATS_H_
