#ifndef UCR_UTIL_STATUS_H_
#define UCR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ucr {

/// \brief Error taxonomy for the ucr library.
///
/// The library reports recoverable failures through `Status` /
/// `StatusOr<T>` rather than exceptions, following the conventions of
/// production database codebases.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed value.
  kNotFound,          ///< Referenced subject/object/right does not exist.
  kAlreadyExists,     ///< Duplicate insertion (node, edge, authorization).
  kFailedPrecondition,///< Operation not valid in the current state.
  kOutOfRange,        ///< Index or id beyond the valid range.
  kCorruption,        ///< Persistent data failed to parse.
  kUnimplemented,     ///< Feature intentionally not supported.
  kInternal,          ///< Invariant violation; indicates a library bug.
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail without a payload.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries
/// a message only on error. It must be inspected; ignoring an error
/// status silently is a bug in the caller.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type `T` or an error `Status`.
///
/// Mirrors the `StatusOr` idiom: `ok()` guards access to `value()`.
/// Accessing the value of a failed result aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success path reads naturally).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is a
  /// caller bug: a successful StatusOr must carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on errored StatusOr");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on errored StatusOr");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on errored StatusOr");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller; continues otherwise.
#define UCR_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ucr::Status ucr_status_ = (expr);          \
    if (!ucr_status_.ok()) return ucr_status_;   \
  } while (false)

#define UCR_MACRO_CONCAT_IMPL(a, b) a##b
#define UCR_MACRO_CONCAT(a, b) UCR_MACRO_CONCAT_IMPL(a, b)

#define UCR_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()

/// Assigns the value of a `StatusOr` expression to `lhs`, or propagates
/// its error to the caller.
#define UCR_ASSIGN_OR_RETURN(lhs, expr) \
  UCR_ASSIGN_OR_RETURN_IMPL(UCR_MACRO_CONCAT(ucr_statusor_, __LINE__), lhs, \
                            expr)

}  // namespace ucr

#endif  // UCR_UTIL_STATUS_H_
