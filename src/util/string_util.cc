#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ucr {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // Overflow.
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace ucr
