#include "core/persistent_system.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/strategy.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"

namespace ucr::core {

namespace {

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Corruption("mkdir failed for '" + dir +
                            "': " + std::strerror(errno));
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void EmitWalCommitEvent(uint64_t lsn, size_t applied) {
  if (!obs::AuditLog::Enabled()) return;
  obs::AuditEvent event;
  event.type = obs::AuditEventType::kWalCommit;
  event.value = lsn;
  event.SetDetail("applied=" + std::to_string(applied));
  obs::AuditLog::Global().Emit(event);
}

}  // namespace

Status PersistentSystem::UnhealthyStatus() const {
  return Status::FailedPrecondition(
      "store is latched after a WAL commit failure: in-memory state is "
      "ahead of the durable log; run Compact() (ucr_admin compact) to "
      "re-persist and heal: " + dir_);
}

StatusOr<PersistentSystem> PersistentSystem::Open(const std::string& dir,
                                                  SystemOptions options,
                                                  OpenStats* stats) {
  UCR_RETURN_IF_ERROR(EnsureDirectory(dir));
  OpenStats local_stats;

  // 1. Base state: the snapshot if one exists, else an empty system
  //    (membership ops create subjects, so a store can grow from
  //    nothing entirely through Apply).
  uint64_t snapshot_lsn = 0;
  std::unique_ptr<AccessControlSystem> system;
  const std::string snapshot_path = SnapshotPath(dir);
  if (FileExists(snapshot_path)) {
    SnapshotMeta meta;
    auto loaded = LoadBinarySnapshot(snapshot_path, options, &meta);
    if (!loaded.ok()) return loaded.status();
    system = std::make_unique<AccessControlSystem>(std::move(loaded).value());
    snapshot_lsn = meta.lsn;
    local_stats.loaded_snapshot = true;
    local_stats.snapshot_lsn = meta.lsn;
  } else {
    system = std::make_unique<AccessControlSystem>(graph::Dag(), options);
  }

  // 2. Replay the WAL above the snapshot's LSN, truncating any torn
  //    tail so the writer appends after a clean end.
  auto contents = ReadWal(WalPath(dir), /*repair_torn_tail=*/true);
  if (!contents.ok()) return contents.status();
  local_stats.torn_bytes = contents->torn_bytes;
  local_stats.discarded_ops = contents->uncommitted_ops;
  for (const WalEvent& event : contents->events) {
    if (event.lsn <= snapshot_lsn) continue;  // Already in the snapshot.
    switch (event.kind) {
      case WalEvent::Kind::kBatch: {
        // Replay exactly the committed prefix: ops past `applied`
        // failed (or were never attempted) in the original run, and
        // retrying them would diverge from the acknowledged history.
        AccessControlSystem::MutationBatchStats batch_stats;
        const auto prefix =
            std::span<const AccessControlSystem::MutationOp>(event.ops)
                .first(event.applied);
        const Status replayed = system->ApplyMutations(prefix, &batch_stats);
        if (!replayed.ok() || batch_stats.applied != event.applied) {
          return Status::Corruption(
              "WAL replay diverged at lsn " + std::to_string(event.lsn) +
              ": " + (replayed.ok() ? "short apply" : replayed.message()));
        }
        ++local_stats.replayed_batches;
        local_stats.replayed_ops += event.applied;
        break;
      }
      case WalEvent::Kind::kStrategyChange: {
        auto strategy = ParseStrategy(event.strategy_mnemonic);
        if (!strategy.ok()) {
          return Status::Corruption("WAL replay: bad strategy mnemonic '" +
                                    event.strategy_mnemonic + "' at lsn " +
                                    std::to_string(event.lsn));
        }
        system->SetStrategy(strategy.value());
        break;
      }
    }
  }

  // 3. Append after the highest LSN either file has seen.
  const uint64_t last_lsn = std::max(snapshot_lsn, contents->last_lsn);
  auto wal = WalWriter::Open(WalPath(dir), last_lsn + 1);
  if (!wal.ok()) return wal.status();

  if (stats != nullptr) *stats = local_stats;
  return PersistentSystem(dir, std::move(*system), std::move(wal).value());
}

Status PersistentSystem::Initialize(const std::string& dir,
                                    const AccessControlSystem& system) {
  UCR_RETURN_IF_ERROR(EnsureDirectory(dir));
  const std::string snapshot_path = SnapshotPath(dir);
  if (FileExists(snapshot_path)) {
    return Status::AlreadyExists("store already initialized: " +
                                 snapshot_path);
  }
  return WriteBinarySnapshot(system, /*lsn=*/0, snapshot_path);
}

Status PersistentSystem::Apply(
    std::span<const AccessControlSystem::MutationOp> ops,
    AccessControlSystem::MutationBatchStats* stats) {
  if (!healthy_) return UnhealthyStatus();

  // Write-ahead: the ops reach the log (unsynced) before any of them
  // touches memory. If the log cannot take them, nothing happens (the
  // WAL writer latches itself; memory is untouched and consistent).
  UCR_RETURN_IF_ERROR(wal_->BeginBatch(ops));

  AccessControlSystem::MutationBatchStats local_stats;
  const Status applied = system_->ApplyMutations(ops, &local_stats);

  // Commit what actually happened — on a partial failure the commit
  // record's `applied` pins the replayable prefix — and fsync once
  // for the whole batch (group commit).
  auto lsn = wal_->Commit(ops.size(), local_stats.applied);
  if (!lsn.ok()) {
    // The in-memory apply happened but durability is gone: memory is
    // now ahead of the log, and a restart would silently roll back
    // state callers can already observe (lost denies fail open).
    // Latch the write path shut so no more work is acknowledged on
    // top of it; Compact() re-persists memory and heals.
    healthy_ = false;
    return lsn.status();
  }
  local_stats.last_lsn = lsn.value();
  EmitWalCommitEvent(lsn.value(), local_stats.applied);
  if (stats != nullptr) *stats = local_stats;
  return applied;
}

Status PersistentSystem::SetStrategy(const Strategy& strategy) {
  if (!healthy_) return UnhealthyStatus();
  // Log first: a strategy change acknowledged but lost would silently
  // flip decisions after a restart.
  UCR_RETURN_IF_ERROR(
      wal_->AppendStrategyChange(strategy.Canonical().ToMnemonic()).status());
  system_->SetStrategy(strategy);
  return Status::OK();
}

Status PersistentSystem::Compact() {
  // Snapshot first, truncate second; the order is the crash-safety.
  // Die after the snapshot rename but before the truncate and recovery
  // just skips every WAL record at or below the snapshot's LSN.
  //
  // Deliberately allowed while unhealthy: the snapshot captures the
  // current in-memory state — including mutations whose commit failed
  // (unacknowledged work becoming durable is the benign direction) —
  // and the WAL reset clears any torn bytes, so the store is whole
  // again.
  const uint64_t lsn = last_lsn();
  UCR_RETURN_IF_ERROR(WriteBinarySnapshot(*system_, lsn, SnapshotPath(dir_)));
  UCR_RETURN_IF_ERROR(wal_->Reset(lsn + 1));
  healthy_ = true;
  return Status::OK();
}

}  // namespace ucr::core
