#include "core/system.h"

#include <algorithm>
#include <mutex>
#include <optional>

#include "core/propagate.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ucr::core {

namespace {

/// Front-door telemetry (DESIGN.md §8): CheckAccess is the serving
/// entry point of the installed system (the cached, single-threaded
/// path behind CheckAccessByName and the admin CLI), distinct from the
/// uncached ResolveAccess family and the batch engine.
struct SystemMetrics {
  obs::Counter& queries = obs::Registry::Global().GetCounter(
      "ucr_system_queries_total",
      "Queries answered by AccessControlSystem::CheckAccess");
  obs::Histogram& latency = obs::Registry::Global().GetHistogram(
      "ucr_system_query_latency_ns",
      "CheckAccess latency, cache hits included (ns)");
};

SystemMetrics& GetSystemMetrics() {
  static SystemMetrics* metrics = new SystemMetrics();
  return *metrics;
}

/// Write-path telemetry (DESIGN.md §10): hierarchy-edit volume and the
/// cost of each edit in affected subjects and dropped cache entries —
/// the two numbers that show reachability-scoped invalidation beating
/// the wholesale clears it replaced.
struct MutationMetrics {
  obs::Counter& mutations = obs::Registry::Global().GetCounter(
      "ucr_mutations_total",
      "Hierarchy mutations applied (membership edge inserts/removals)");
  obs::Counter& invalidated = obs::Registry::Global().GetCounter(
      "ucr_invalidated_entries_total",
      "Cache entries dropped by hierarchy-edit invalidation sweeps");
  obs::Histogram& affected_subjects = obs::Registry::Global().GetHistogram(
      "ucr_mutation_affected_subjects",
      "Affected-set size per invalidation sweep (subjects)");
};

MutationMetrics& GetMutationMetrics() {
  static MutationMetrics* metrics = new MutationMetrics();
  return *metrics;
}

/// Same Fig. 4 payload as the ResolveAccess/BatchResolver tracers; a
/// resolution cache hit records no derivation of its own.
[[gnu::noinline, gnu::cold]] void RecordSystemTrace(graph::NodeId subject, acm::ObjectId object,
                       acm::RightId right, const Strategy& canonical,
                       bool resolution_hit, bool subgraph_hit,
                       uint64_t t_start, uint64_t t_propagate, uint64_t t_end,
                       const ResolveTrace* trace, acm::Mode mode,
                       const obs::PhaseBreakdown& phases) {
  obs::QueryTraceRecord record;
  record.subject = subject;
  record.object = object;
  record.right = right;
  record.strategy_index = canonical.CanonicalIndex();
  record.fast_path = false;  // CheckAccess runs the classic cached path.
  record.resolution_cache_hit = resolution_hit;
  record.subgraph_cache_hit = subgraph_hit;
  if (!resolution_hit) {
    record.propagate_ns = t_propagate - t_start;
    record.resolve_ns = t_end - t_propagate;
  }
  record.total_ns = t_end - t_start;
  record.phases = phases;
  if (trace != nullptr) {
    record.has_majority = trace->c1.has_value();
    record.c1 = trace->c1.value_or(0);
    record.c2 = trace->c2.value_or(0);
    record.auth_computed = trace->auth_computed;
    record.auth_has_positive = trace->auth_has_positive;
    record.auth_has_negative = trace->auth_has_negative;
    record.returned_line = trace->returned_line;
  }
  record.granted = mode == acm::Mode::kPositive;
  const uint64_t sequence = obs::QueryTracer::Global().Record(record);
  // Exemplar: link this sample's tail-latency bucket to its trace so
  // /tracez can recover the full Fig. 4 derivation.
  GetSystemMetrics().latency.RecordExemplar(record.total_ns, sequence,
                                            subject, object, right);
}

/// Audit hook for the named administrative operations (DESIGN.md §9).
/// Cold by construction: only successful state changes reach it, and
/// the Enabled() check is done by the caller.
[[gnu::noinline, gnu::cold]] void EmitAdminEvent(
    obs::AuditEventType type, std::string_view detail, uint64_t value = 0) {
  obs::AuditEvent event;
  event.type = type;
  event.value = value;
  event.SetDetail(detail);
  obs::AuditLog::Global().Emit(event);
}

/// The epoch-lag gauge lives in snapshot.cc's metric family; the write
/// path updates it by interned name (the registry hands back the same
/// gauge object).
obs::Gauge& EpochLagGauge() {
  static obs::Gauge& gauge = obs::Registry::Global().GetGauge(
      "ucr_epoch_lag",
      "Master-state mutations applied but not yet visible in the published "
      "snapshot");
  return gauge;
}

/// Takes the snapshot write lock when snapshots are enabled (null
/// mutex = disabled = the historical unsynchronized write path, zero
/// overhead). Instrumented under the write-path family so the
/// reader-path `ucr_lock_*` counters stay untouched by mutators.
class [[nodiscard]] WriterGuard {
 public:
  explicit WriterGuard(std::mutex* mu) : mu_(mu) {
    if (mu_ != nullptr) {
      obs::LockWithMetrics(*mu_, obs::GetWriteLockMetrics());
    }
  }
  ~WriterGuard() {
    if (mu_ != nullptr) mu_->unlock();
  }
  WriterGuard(const WriterGuard&) = delete;
  WriterGuard& operator=(const WriterGuard&) = delete;

 private:
  std::mutex* mu_;
};

}  // namespace

AccessControlSystem::AccessControlSystem(graph::Dag dag, SystemOptions options)
    : dag_(std::move(dag)), options_(options) {
  options_.default_strategy = options_.default_strategy.Canonical();
  if (options_.enable_snapshot_reads) EnableSnapshotReads();
}

AccessControlSystem::AccessControlSystem(graph::Dag dag, acm::ExplicitAcm eacm,
                                         SystemOptions options)
    : dag_(std::move(dag)), eacm_(std::move(eacm)), options_(options) {
  options_.default_strategy = options_.default_strategy.Canonical();
  if (options_.enable_snapshot_reads) EnableSnapshotReads();
}

const char* AccessControlSystem::MutationOpKindName(MutationOp::Kind kind) {
  switch (kind) {
    case MutationOp::Kind::kGrant:
      return "grant";
    case MutationOp::Kind::kDeny:
      return "deny";
    case MutationOp::Kind::kRevoke:
      return "revoke";
    case MutationOp::Kind::kAddMembership:
      return "add_membership";
    case MutationOp::Kind::kRemoveMembership:
      return "remove_membership";
  }
  return "unknown";
}

void AccessControlSystem::SetStrategy(const Strategy& strategy) {
  WriterGuard guard(snapshot_state_ != nullptr ? &snapshot_state_->write_mu
                                               : nullptr);
  options_.default_strategy = strategy.Canonical();
  if (obs::AuditLog::Enabled()) {
    EmitAdminEvent(obs::AuditEventType::kStrategyChange,
                   options_.default_strategy.ToMnemonic(),
                   options_.default_strategy.CanonicalIndex());
  }
  // The session strategy is part of the snapshot (it decides every
  // default-strategy query), so reconfiguring it republishes.
  if (snapshot_state_ != nullptr) PublishSnapshotLocked();
}

Status AccessControlSystem::SetMode(std::string_view subject,
                                    std::string_view object,
                                    std::string_view right, acm::Mode mode) {
  const graph::NodeId s = dag_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const acm::ObjectId o, eacm_.InternObject(object));
  UCR_ASSIGN_OR_RETURN(const acm::RightId r, eacm_.InternRight(right));
  const std::optional<acm::Mode> existing = eacm_.Get(s, o, r);
  if (existing.has_value() && *existing == mode) return Status::OK();
  if (existing.has_value()) {
    // The triple holds the opposite mode; the matrix itself always
    // rejects contradictions (§3.3), so the outcome is decided here by
    // the configured policy.
    if (options_.mutation_conflict_policy == GrantConflictPolicy::kReject) {
      return Status::FailedPrecondition(
          "subject '" + std::string(subject) + "' already holds the opposite "
          "explicit mode for (" + std::string(object) + ", " +
          std::string(right) + "); revoke it first or configure "
          "mutation_conflict_policy = kOverwrite");
    }
    eacm_.Overwrite(s, o, r, mode);
  } else {
    UCR_RETURN_IF_ERROR(eacm_.Set(s, o, r, mode));
  }
  NoteRightsEdit(s);
  if (obs::AuditLog::Enabled()) {
    obs::AuditEvent event;
    event.type = mode == acm::Mode::kPositive ? obs::AuditEventType::kGrant
                                              : obs::AuditEventType::kDeny;
    event.has_ids = true;
    event.subject = s;
    event.object = o;
    event.right = r;
    event.SetDetail(std::string(subject) + " " + std::string(object) + " " +
                    std::string(right));
    obs::AuditLog::Global().Emit(event);
  }
  return Status::OK();
}

Status AccessControlSystem::Grant(std::string_view subject,
                                  std::string_view object,
                                  std::string_view right) {
  WriterGuard guard(snapshot_state_ != nullptr ? &snapshot_state_->write_mu
                                               : nullptr);
  const Status status = SetMode(subject, object, right, acm::Mode::kPositive);
  if (status.ok() && snapshot_state_ != nullptr) PublishSnapshotLocked();
  return status;
}

Status AccessControlSystem::DenyAccess(std::string_view subject,
                                       std::string_view object,
                                       std::string_view right) {
  WriterGuard guard(snapshot_state_ != nullptr ? &snapshot_state_->write_mu
                                               : nullptr);
  const Status status = SetMode(subject, object, right, acm::Mode::kNegative);
  if (status.ok() && snapshot_state_ != nullptr) PublishSnapshotLocked();
  return status;
}

Status AccessControlSystem::MutateMembership(
    bool add, std::string_view parent, std::string_view child,
    std::vector<graph::NodeId>* affected) {
  std::vector<graph::NodeId> edit_affected;
  if (add) {
    // Reject self-loops by name before creating anything, so a failed
    // edit never leaves a stray node behind. (Every other failure mode
    // — duplicate edge, cycle — requires both endpoints to already
    // exist, so EnsureNode cannot have created them.)
    if (parent == child) {
      return Status::InvalidArgument("self-loop on node '" +
                                     std::string(parent) + "'");
    }
    const graph::NodeId p = dag_.EnsureNode(parent);
    const graph::NodeId c = dag_.EnsureNode(child);
    UCR_RETURN_IF_ERROR(dag_.InsertEdge(p, c, &edit_affected));
  } else {
    const graph::NodeId p = dag_.FindNode(parent);
    const graph::NodeId c = dag_.FindNode(child);
    if (p == graph::kInvalidNode || c == graph::kInvalidNode ||
        !dag_.HasEdge(p, c)) {
      return Status::NotFound("no membership " + std::string(parent) +
                              " -> " + std::string(child));
    }
    UCR_RETURN_IF_ERROR(dag_.EraseEdge(p, c, &edit_affected));
  }
  if constexpr (obs::kEnabled) GetMutationMetrics().mutations.Inc();
  if (obs::AuditLog::Enabled()) {
    // `value` carries the affected-set size: the audit trail shows how
    // far each reorg reached, not just that it happened.
    EmitAdminEvent(add ? obs::AuditEventType::kAddMember
                       : obs::AuditEventType::kRemoveMember,
                   std::string(parent) + " -> " + std::string(child),
                   edit_affected.size());
  }
  if (options_.use_reachability_index) {
    reach_dirty_affected_.insert(reach_dirty_affected_.end(),
                                 edit_affected.begin(), edit_affected.end());
  }
  if (affected != nullptr) {
    affected->insert(affected->end(), edit_affected.begin(),
                     edit_affected.end());
  }
  return Status::OK();
}

size_t AccessControlSystem::InvalidateAffected(
    const std::vector<graph::NodeId>& affected) {
  size_t dropped = 0;
  if (options_.incremental_hierarchy_updates) {
    std::vector<uint8_t> bitmap(dag_.node_count(), 0);
    for (graph::NodeId v : affected) bitmap[v] = 1;
    dropped += resolution_cache_.EraseSubjects(bitmap);
    dropped += subgraph_cache_.EraseSubjects(bitmap);
  } else {
    // Full-clear baseline: every warm entry is evicted, including the
    // subjects this edit cannot have touched.
    dropped += resolution_cache_.size() + subgraph_cache_.size();
    subgraph_cache_.Clear();
    resolution_cache_.Clear();
  }
  if constexpr (obs::kEnabled) {
    GetMutationMetrics().invalidated.Inc(dropped);
    GetMutationMetrics().affected_subjects.Observe(affected.size());
  }
  return dropped;
}

void AccessControlSystem::NoteRightsEdit(graph::NodeId subject) {
  if (!options_.use_reachability_index) return;
  reach_dirty_rows_.push_back(subject);
  // A row edit can re-class `subject`, changing the profile labels of
  // every node that can see it: itself plus its hierarchy descendants
  // (DescendantsOf includes the start node).
  const std::vector<graph::NodeId> scope = dag_.DescendantsOf(subject);
  reach_dirty_affected_.insert(reach_dirty_affected_.end(), scope.begin(),
                               scope.end());
}

void AccessControlSystem::EnsureReachIndexCurrent() {
  if (!options_.use_reachability_index) return;
  // Current = nothing to do. A current-but-not-ready index (budget
  // breach at this very generation) also short-circuits: retrying the
  // same build every query would thrash; the next mutation re-arms it.
  if (reach_index_ != nullptr &&
      reach_index_->dag_generation() == dag_.generation() &&
      reach_index_->acm_epoch() == eacm_.epoch() &&
      reach_index_->node_count() == dag_.node_count()) {
    return;
  }
  if (reach_index_ == nullptr || !reach_index_->ready()) {
    // First build, or recovery from a budget-tripped generation (whose
    // labels cannot seed an incremental pass).
    reach_index_ = graph::ReachabilityIndex::Build(
        dag_, eacm_.epoch(), eacm_.ReachRows(), options_.reachability_options);
  } else {
    std::sort(reach_dirty_affected_.begin(), reach_dirty_affected_.end());
    reach_dirty_affected_.erase(std::unique(reach_dirty_affected_.begin(),
                                            reach_dirty_affected_.end()),
                                reach_dirty_affected_.end());
    std::sort(reach_dirty_rows_.begin(), reach_dirty_rows_.end());
    reach_dirty_rows_.erase(
        std::unique(reach_dirty_rows_.begin(), reach_dirty_rows_.end()),
        reach_dirty_rows_.end());
    reach_index_ = graph::ReachabilityIndex::RebuildIncremental(
        dag_, eacm_.epoch(), reach_index_, reach_dirty_affected_,
        eacm_.ReachRowsFor(reach_dirty_rows_));
  }
  reach_dirty_affected_.clear();
  reach_dirty_rows_.clear();
}

const graph::ReachabilityIndex* AccessControlSystem::reachability_index() {
  EnsureReachIndexCurrent();
  return reach_index_.get();
}

Status AccessControlSystem::AddMembership(
    std::string_view parent, std::string_view child,
    std::vector<graph::NodeId>* affected) {
  WriterGuard guard(snapshot_state_ != nullptr ? &snapshot_state_->write_mu
                                               : nullptr);
  std::vector<graph::NodeId> edit_affected;
  UCR_RETURN_IF_ERROR(MutateMembership(/*add=*/true, parent, child,
                                       &edit_affected));
  InvalidateAffected(edit_affected);
  if (snapshot_state_ != nullptr) PublishSnapshotLocked();
  if (affected != nullptr) *affected = std::move(edit_affected);
  return Status::OK();
}

Status AccessControlSystem::RemoveMembership(
    std::string_view parent, std::string_view child,
    std::vector<graph::NodeId>* affected) {
  WriterGuard guard(snapshot_state_ != nullptr ? &snapshot_state_->write_mu
                                               : nullptr);
  std::vector<graph::NodeId> edit_affected;
  UCR_RETURN_IF_ERROR(MutateMembership(/*add=*/false, parent, child,
                                       &edit_affected));
  InvalidateAffected(edit_affected);
  if (snapshot_state_ != nullptr) PublishSnapshotLocked();
  if (affected != nullptr) *affected = std::move(edit_affected);
  return Status::OK();
}

Status AccessControlSystem::ApplyMutations(std::span<const MutationOp> ops,
                                           MutationBatchStats* stats) {
  // One lock, one snapshot publication for the whole batch: the ops
  // run against the master state via the unlocked internals (the
  // public mutators would deadlock on the non-recursive write lock
  // and publish N snapshots).
  WriterGuard guard(snapshot_state_ != nullptr ? &snapshot_state_->write_mu
                                               : nullptr);
  std::vector<graph::NodeId> affected;
  size_t applied = 0;
  size_t failed_index = MutationBatchStats::kNone;
  Status status;
  for (const MutationOp& op : ops) {
    switch (op.kind) {
      case MutationOp::Kind::kGrant:
        status = SetMode(op.subject, op.object, op.right,
                         acm::Mode::kPositive);
        break;
      case MutationOp::Kind::kDeny:
        status = SetMode(op.subject, op.object, op.right,
                         acm::Mode::kNegative);
        break;
      case MutationOp::Kind::kRevoke:
        status = RevokeUnlocked(op.subject, op.object, op.right);
        break;
      case MutationOp::Kind::kAddMembership:
        status = MutateMembership(/*add=*/true, op.subject, op.object,
                                  &affected);
        break;
      case MutationOp::Kind::kRemoveMembership:
        status = MutateMembership(/*add=*/false, op.subject, op.object,
                                  &affected);
        break;
    }
    if (!status.ok()) {
      // Name the failing position and kind in the status itself:
      // partial-batch failures were previously opaque (the caller knew
      // *something* failed, not where to resume), and WAL replay needs
      // the applied-prefix boundary to be unambiguous.
      failed_index = applied;
      status = Status(status.code(),
                      "op " + std::to_string(failed_index) + " (" +
                          MutationOpKindName(op.kind) +
                          "): " + status.message());
      break;
    }
    ++applied;
    NoteMutationApplied();
  }
  // One sweep over the union, even on early abort: the hierarchy edits
  // that did apply must not leave stale cached state behind.
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  size_t dropped = 0;
  if (!affected.empty()) dropped = InvalidateAffected(affected);
  // Publish even on early abort: the ops that did apply are master
  // state now, and the snapshot must converge to it.
  if (snapshot_state_ != nullptr && applied > 0) PublishSnapshotLocked();
  if (stats != nullptr) {
    stats->applied = applied;
    stats->invalidated_entries = dropped;
    stats->failed_index = failed_index;
    stats->affected = std::move(affected);
  }
  return status;
}

Status AccessControlSystem::Revoke(std::string_view subject,
                                   std::string_view object,
                                   std::string_view right) {
  WriterGuard guard(snapshot_state_ != nullptr ? &snapshot_state_->write_mu
                                               : nullptr);
  const Status status = RevokeUnlocked(subject, object, right);
  if (status.ok() && snapshot_state_ != nullptr) PublishSnapshotLocked();
  return status;
}

Status AccessControlSystem::RevokeUnlocked(std::string_view subject,
                                           std::string_view object,
                                           std::string_view right) {
  const graph::NodeId s = dag_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const acm::ObjectId o, eacm_.FindObject(object));
  UCR_ASSIGN_OR_RETURN(const acm::RightId r, eacm_.FindRight(right));
  const bool erased = eacm_.Erase(s, o, r);
  if (erased) NoteRightsEdit(s);
  if (erased && obs::AuditLog::Enabled()) {
    obs::AuditEvent event;
    event.type = obs::AuditEventType::kRevoke;
    event.has_ids = true;
    event.subject = s;
    event.object = o;
    event.right = r;
    event.SetDetail(std::string(subject) + " " + std::string(object) + " " +
                    std::string(right));
    obs::AuditLog::Global().Emit(event);
  }
  return Status::OK();
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccessByName(
    std::string_view subject, std::string_view object,
    std::string_view right) {
  return CheckAccessByName(subject, object, right, options_.default_strategy);
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccessByName(
    std::string_view subject, std::string_view object, std::string_view right,
    const Strategy& strategy) {
  const graph::NodeId s = dag_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const acm::ObjectId o, eacm_.FindObject(object));
  UCR_ASSIGN_OR_RETURN(const acm::RightId r, eacm_.FindRight(right));
  return CheckAccess(s, o, r, strategy);
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccess(graph::NodeId subject,
                                                     acm::ObjectId object,
                                                     acm::RightId right,
                                                     const Strategy& strategy) {
  if (subject >= dag_.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= eacm_.object_count() || right >= eacm_.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  const Strategy canonical = strategy.Canonical();
  const bool sampled = obs::QueryTracer::ShouldSample();
  const uint64_t t_start = sampled ? obs::NowNs() : 0;
  // Phase-attribution owner scope (DESIGN.md §14): the cache probes,
  // composition, propagation, and resolve below attribute into it.
  obs::ScopedPhaseCollection phase_scope(sampled);
  // Cache entries are validated against the (object, right) column's
  // own epoch, so edits to unrelated columns keep their cached
  // decisions warm.
  const uint64_t column_epoch = eacm_.ColumnEpoch(object, right);
  if (options_.enable_resolution_cache) {
    const std::optional<acm::Mode> cached = resolution_cache_.Lookup(
        subject, object, right, canonical, column_epoch);
    if (cached.has_value()) {
      if constexpr (obs::kEnabled) {
        GetSystemMetrics().queries.Inc();
        if (sampled) [[unlikely]] {
          const uint64_t t_end = obs::NowNs();
          GetSystemMetrics().latency.Observe(t_end - t_start);
          RecordSystemTrace(subject, object, right, canonical,
                            /*resolution_hit=*/true, /*subgraph_hit=*/false,
                            t_start, t_start, t_end, nullptr, *cached,
                            phase_scope.Snapshot());
        }
      }
      return *cached;
    }
  }

  // Indexed compose path (DESIGN.md §12): refresh the reachability
  // index (coalescing any pending mutation dirt) and derive the sink
  // bag from the subject's O(|label|) profile instead of extracting
  // the ancestor sub-graph. Bit-identical decisions; falls through to
  // the classic path when the index is unusable (kSecondWins, budget
  // breach, option off).
  if (options_.use_reachability_index) {
    EnsureReachIndexCurrent();
    ResolveAccessOptions reach_gate;
    reach_gate.propagation_mode = options_.propagation_mode;
    if (ReachIndexUsable(reach_index_.get(), dag_, eacm_, reach_gate)) {
      ResolveTrace sampled_trace;
      const acm::Mode mode = ResolveEntries(
          ComposeIndexedSinkBag(*reach_index_, subject, object, right,
                                options_.propagation_mode),
          canonical, sampled ? &sampled_trace : nullptr);
      if (options_.enable_resolution_cache) {
        resolution_cache_.Store(subject, object, right, canonical,
                                column_epoch, mode);
      }
      if constexpr (obs::kEnabled) {
        GetSystemMetrics().queries.Inc();
        if (sampled) [[unlikely]] {
          const uint64_t t_end = obs::NowNs();
          GetSystemMetrics().latency.Observe(t_end - t_start);
          RecordSystemTrace(subject, object, right, canonical,
                            /*resolution_hit=*/false, /*subgraph_hit=*/false,
                            t_start, t_start, t_end, &sampled_trace, mode,
                            phase_scope.Snapshot());
        }
      }
      return mode;
    }
  }

  const std::vector<std::optional<acm::Mode>> labels =
      eacm_.ExtractLabels(dag_.node_count(), object, right);
  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;
  RightsBag all_rights;
  bool subgraph_hit = false;
  if (options_.enable_subgraph_cache) {
    const uint64_t hits_before = subgraph_cache_.hits();
    all_rights = PropagateAggregated(subgraph_cache_.Get(dag_, subject),
                                     labels, prop_options);
    subgraph_hit = subgraph_cache_.hits() > hits_before;
  } else {
    const graph::AncestorSubgraph sub(dag_, subject);
    all_rights = PropagateAggregated(sub, labels, prop_options);
  }
  const uint64_t t_propagate = sampled ? obs::NowNs() : 0;
  ResolveTrace sampled_trace;
  const acm::Mode mode =
      Resolve(all_rights, canonical, sampled ? &sampled_trace : nullptr);
  if (options_.enable_resolution_cache) {
    resolution_cache_.Store(subject, object, right, canonical, column_epoch,
                            mode);
  }
  if constexpr (obs::kEnabled) {
    GetSystemMetrics().queries.Inc();
    if (sampled) [[unlikely]] {
      const uint64_t t_end = obs::NowNs();
      GetSystemMetrics().latency.Observe(t_end - t_start);
      RecordSystemTrace(subject, object, right, canonical,
                        /*resolution_hit=*/false, subgraph_hit, t_start,
                        t_propagate, t_end, &sampled_trace, mode,
                        phase_scope.Snapshot());
    }
  }
  return mode;
}

StatusOr<std::vector<acm::Mode>> AccessControlSystem::CheckAccessBatch(
    std::span<const AccessQuery> queries, const Strategy& strategy,
    size_t threads) {
  // Validate everything up front so worker threads cannot fail on ids.
  for (const AccessQuery& q : queries) {
    if (q.subject >= dag_.node_count() || q.object >= eacm_.object_count() ||
        q.right >= eacm_.right_count()) {
      return Status::OutOfRange("batch query references unknown ids");
    }
  }
  std::vector<acm::Mode> results(queries.size(), acm::Mode::kNegative);
  if (queries.empty()) return results;

  if (threads <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      UCR_ASSIGN_OR_RETURN(
          results[i],
          CheckAccess(queries[i].subject, queries[i].object,
                      queries[i].right, strategy));
    }
    return results;
  }

  // Parallel path: const access to the hierarchy and matrix only. The
  // calling thread participates, so the pool gets threads - 1 workers.
  // The reachability index is refreshed once up front — workers then
  // share the immutable generation (or fall back per ReachIndexUsable).
  const Strategy canonical = strategy.Canonical();
  ResolveAccessOptions resolve_options;
  resolve_options.propagation_mode = options_.propagation_mode;
  resolve_options.use_reachability_index = options_.use_reachability_index;
  EnsureReachIndexCurrent();
  ThreadPool pool(std::min(threads, queries.size()) - 1);
  std::mutex error_mu;
  Status first_error;
  pool.ParallelFor(0, queries.size(), [&](size_t i) {
    auto mode = ResolveAccess(dag_, eacm_, queries[i].subject,
                              queries[i].object, queries[i].right, canonical,
                              resolve_options, nullptr, nullptr,
                              reach_index_.get());
    if (!mode.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = mode.status();
      return;
    }
    results[i] = *mode;
  });
  UCR_RETURN_IF_ERROR(first_error);
  return results;
}

StatusOr<std::vector<acm::Mode>>
AccessControlSystem::CheckAccessAllStrategies(graph::NodeId subject,
                                              acm::ObjectId object,
                                              acm::RightId right) {
  if (subject >= dag_.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= eacm_.object_count() || right >= eacm_.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  // One indexed bag composition serves all 48 resolutions just as one
  // classic propagation would: the bag does not depend on the strategy.
  if (options_.use_reachability_index) {
    EnsureReachIndexCurrent();
    ResolveAccessOptions reach_gate;
    reach_gate.propagation_mode = options_.propagation_mode;
    if (ReachIndexUsable(reach_index_.get(), dag_, eacm_, reach_gate)) {
      const std::span<const RightsEntry> bag = ComposeIndexedSinkBag(
          *reach_index_, subject, object, right, options_.propagation_mode);
      std::vector<acm::Mode> out;
      out.reserve(AllStrategies().size());
      for (const Strategy& s : AllStrategies()) {
        out.push_back(ResolveEntries(bag, s));
      }
      return out;
    }
  }
  const std::vector<std::optional<acm::Mode>> labels =
      eacm_.ExtractLabels(dag_.node_count(), object, right);
  std::optional<graph::AncestorSubgraph> local_sub;
  const graph::AncestorSubgraph* sub;
  if (options_.enable_subgraph_cache) {
    sub = &subgraph_cache_.Get(dag_, subject);
  } else {
    local_sub.emplace(dag_, subject);
    sub = &*local_sub;
  }
  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;
  const RightsBag all_rights =
      PropagateAggregated(*sub, labels, prop_options);

  std::vector<acm::Mode> out;
  out.reserve(AllStrategies().size());
  for (const Strategy& s : AllStrategies()) {
    out.push_back(Resolve(all_rights, s));
  }
  return out;
}

StatusOr<std::vector<acm::Mode>>
AccessControlSystem::MaterializeEffectiveColumn(acm::ObjectId object,
                                                acm::RightId right,
                                                const Strategy& strategy) {
  if (object >= eacm_.object_count() || right >= eacm_.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  const std::vector<std::optional<acm::Mode>> labels =
      eacm_.ExtractLabels(dag_.node_count(), object, right);
  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;
  const std::vector<RightsBag> bags =
      PropagateWholeDag(dag_, labels, prop_options);

  std::vector<acm::Mode> column;
  column.reserve(bags.size());
  for (const RightsBag& bag : bags) {
    column.push_back(Resolve(bag, strategy));
  }
  return column;
}

// ---------------------------------------------------------------------------
// Epoch-pinned snapshot reads (DESIGN.md §11)

void AccessControlSystem::EnableSnapshotReads() {
  if (snapshot_state_ != nullptr) return;
  snapshot_state_ = std::make_unique<SnapshotState>();
  WriterGuard guard(&snapshot_state_->write_mu);
  PublishSnapshotLocked();
}

void AccessControlSystem::NoteMutationApplied() {
  if (snapshot_state_ == nullptr) return;
  ++snapshot_state_->pending_mutations;
  if constexpr (obs::kEnabled) {
    EpochLagGauge().Set(
        static_cast<int64_t>(snapshot_state_->pending_mutations));
  }
}

void AccessControlSystem::PublishSnapshotLocked() {
  SnapshotState& state = *snapshot_state_;
  // The current snapshot is the carry-over source. The pin is not
  // strictly needed for safety — only Publish (below, same thread)
  // retires snapshots — but it documents the lifetime and keeps the
  // reader gauge honest about the writer's read.
  const SnapshotManager::ReadPin previous = state.manager.Pin();
  if (previous &&
      previous->resolution.size() * 2 >= previous->resolution.capacity() &&
      state.resolution_capacity < (size_t{1} << 22)) {
    state.resolution_capacity *= 2;
  }
  // The published snapshot carries the index generation matching its
  // (dag, eacm) copy, so snapshot readers compose indexed bags
  // lock-free; refreshing here coalesces the batch's mutation dirt
  // into one incremental rebuild per publication.
  EnsureReachIndexCurrent();
  std::unique_ptr<const HierarchySnapshot> next = BuildSnapshot(
      dag_, eacm_, options_.default_strategy, options_.propagation_mode,
      state.manager.current_epoch() + 1, previous.get(),
      state.resolution_capacity, reach_index_);
  if (!previous) {
    // First publication: warm the snapshot from the serial resolution
    // cache so enabling snapshots on a hot system keeps its memo.
    // Entries are validated against the live column epochs (the serial
    // cache already dropped anything a hierarchy edit invalidated).
    resolution_cache_.ForEach([&](graph::NodeId s, acm::ObjectId o,
                                  acm::RightId r, uint8_t strategy,
                                  uint64_t epoch, acm::Mode mode) {
      if (epoch == eacm_.ColumnEpoch(o, r)) {
        next->resolution.TryStore(s, o, r, strategy, mode);
      }
    });
  }
  state.manager.Publish(std::move(next));
  state.pending_mutations = 0;
  if constexpr (obs::kEnabled) EpochLagGauge().Set(0);
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccessSnapshot(
    graph::NodeId subject, acm::ObjectId object, acm::RightId right) const {
  if (snapshot_state_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshot reads not enabled; call EnableSnapshotReads()");
  }
  const SnapshotManager::ReadPin pin = snapshot_state_->manager.Pin();
  return SnapshotResolveAccess(*pin, subject, object, right,
                               pin->default_strategy);
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccessSnapshot(
    graph::NodeId subject, acm::ObjectId object, acm::RightId right,
    const Strategy& strategy) const {
  if (snapshot_state_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshot reads not enabled; call EnableSnapshotReads()");
  }
  const SnapshotManager::ReadPin pin = snapshot_state_->manager.Pin();
  return SnapshotResolveAccess(*pin, subject, object, right, strategy);
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccessSnapshotByName(
    std::string_view subject, std::string_view object,
    std::string_view right) const {
  if (snapshot_state_ == nullptr) {
    return Status::FailedPrecondition(
        "snapshot reads not enabled; call EnableSnapshotReads()");
  }
  const SnapshotManager::ReadPin pin = snapshot_state_->manager.Pin();
  const graph::NodeId s = pin->dag.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const acm::ObjectId o, pin->eacm.FindObject(object));
  UCR_ASSIGN_OR_RETURN(const acm::RightId r, pin->eacm.FindRight(right));
  return SnapshotResolveAccess(*pin, s, o, r, pin->default_strategy);
}

}  // namespace ucr::core
