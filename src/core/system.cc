#include "core/system.h"

#include <algorithm>
#include <mutex>
#include <optional>

#include "core/propagate.h"
#include "util/thread_pool.h"

namespace ucr::core {

AccessControlSystem::AccessControlSystem(graph::Dag dag, SystemOptions options)
    : dag_(std::move(dag)), options_(options) {
  options_.default_strategy = options_.default_strategy.Canonical();
}

Status AccessControlSystem::SetMode(std::string_view subject,
                                    std::string_view object,
                                    std::string_view right, acm::Mode mode) {
  const graph::NodeId s = dag_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const acm::ObjectId o, eacm_.InternObject(object));
  UCR_ASSIGN_OR_RETURN(const acm::RightId r, eacm_.InternRight(right));
  return eacm_.Set(s, o, r, mode);
}

Status AccessControlSystem::Grant(std::string_view subject,
                                  std::string_view object,
                                  std::string_view right) {
  return SetMode(subject, object, right, acm::Mode::kPositive);
}

Status AccessControlSystem::DenyAccess(std::string_view subject,
                                       std::string_view object,
                                       std::string_view right) {
  return SetMode(subject, object, right, acm::Mode::kNegative);
}

Status AccessControlSystem::RebuildHierarchy(graph::Dag replacement) {
  dag_ = std::move(replacement);
  // A membership change can alter any subject's ancestor set, so all
  // derived state is suspect.
  subgraph_cache_.Clear();
  resolution_cache_.Clear();
  return Status::OK();
}

Status AccessControlSystem::AddMembership(std::string_view parent,
                                          std::string_view child) {
  graph::DagBuilder builder;
  for (graph::NodeId v = 0; v < dag_.node_count(); ++v) {
    builder.AddNode(dag_.name(v));  // Preserve existing ids.
  }
  for (graph::NodeId v = 0; v < dag_.node_count(); ++v) {
    for (graph::NodeId c : dag_.children(v)) {
      UCR_RETURN_IF_ERROR(builder.AddEdgeById(v, c));
    }
  }
  UCR_RETURN_IF_ERROR(builder.AddEdge(parent, child));
  auto rebuilt = std::move(builder).Build();
  if (!rebuilt.ok()) return rebuilt.status();  // Cycle: state unchanged.
  return RebuildHierarchy(std::move(rebuilt).value());
}

Status AccessControlSystem::RemoveMembership(std::string_view parent,
                                             std::string_view child) {
  const graph::NodeId p = dag_.FindNode(parent);
  const graph::NodeId c = dag_.FindNode(child);
  if (p == graph::kInvalidNode || c == graph::kInvalidNode ||
      !dag_.HasEdge(p, c)) {
    return Status::NotFound("no membership " + std::string(parent) + " -> " +
                            std::string(child));
  }
  graph::DagBuilder builder;
  for (graph::NodeId v = 0; v < dag_.node_count(); ++v) {
    builder.AddNode(dag_.name(v));
  }
  for (graph::NodeId v = 0; v < dag_.node_count(); ++v) {
    for (graph::NodeId cc : dag_.children(v)) {
      if (v == p && cc == c) continue;
      UCR_RETURN_IF_ERROR(builder.AddEdgeById(v, cc));
    }
  }
  auto rebuilt = std::move(builder).Build();
  if (!rebuilt.ok()) return rebuilt.status();
  return RebuildHierarchy(std::move(rebuilt).value());
}

Status AccessControlSystem::Revoke(std::string_view subject,
                                   std::string_view object,
                                   std::string_view right) {
  const graph::NodeId s = dag_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const acm::ObjectId o, eacm_.FindObject(object));
  UCR_ASSIGN_OR_RETURN(const acm::RightId r, eacm_.FindRight(right));
  eacm_.Erase(s, o, r);
  return Status::OK();
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccessByName(
    std::string_view subject, std::string_view object,
    std::string_view right) {
  return CheckAccessByName(subject, object, right, options_.default_strategy);
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccessByName(
    std::string_view subject, std::string_view object, std::string_view right,
    const Strategy& strategy) {
  const graph::NodeId s = dag_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const acm::ObjectId o, eacm_.FindObject(object));
  UCR_ASSIGN_OR_RETURN(const acm::RightId r, eacm_.FindRight(right));
  return CheckAccess(s, o, r, strategy);
}

StatusOr<acm::Mode> AccessControlSystem::CheckAccess(graph::NodeId subject,
                                                     acm::ObjectId object,
                                                     acm::RightId right,
                                                     const Strategy& strategy) {
  if (subject >= dag_.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= eacm_.object_count() || right >= eacm_.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  const Strategy canonical = strategy.Canonical();
  // Cache entries are validated against the (object, right) column's
  // own epoch, so edits to unrelated columns keep their cached
  // decisions warm.
  const uint64_t column_epoch = eacm_.ColumnEpoch(object, right);
  if (options_.enable_resolution_cache) {
    const std::optional<acm::Mode> cached = resolution_cache_.Lookup(
        subject, object, right, canonical, column_epoch);
    if (cached.has_value()) return *cached;
  }

  const std::vector<std::optional<acm::Mode>> labels =
      eacm_.ExtractLabels(dag_.node_count(), object, right);
  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;
  RightsBag all_rights;
  if (options_.enable_subgraph_cache) {
    all_rights = PropagateAggregated(subgraph_cache_.Get(dag_, subject),
                                     labels, prop_options);
  } else {
    const graph::AncestorSubgraph sub(dag_, subject);
    all_rights = PropagateAggregated(sub, labels, prop_options);
  }
  const acm::Mode mode = Resolve(all_rights, canonical);
  if (options_.enable_resolution_cache) {
    resolution_cache_.Store(subject, object, right, canonical, column_epoch,
                            mode);
  }
  return mode;
}

StatusOr<std::vector<acm::Mode>> AccessControlSystem::CheckAccessBatch(
    std::span<const AccessQuery> queries, const Strategy& strategy,
    size_t threads) {
  // Validate everything up front so worker threads cannot fail on ids.
  for (const AccessQuery& q : queries) {
    if (q.subject >= dag_.node_count() || q.object >= eacm_.object_count() ||
        q.right >= eacm_.right_count()) {
      return Status::OutOfRange("batch query references unknown ids");
    }
  }
  std::vector<acm::Mode> results(queries.size(), acm::Mode::kNegative);
  if (queries.empty()) return results;

  if (threads <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      UCR_ASSIGN_OR_RETURN(
          results[i],
          CheckAccess(queries[i].subject, queries[i].object,
                      queries[i].right, strategy));
    }
    return results;
  }

  // Parallel path: const access to the hierarchy and matrix only. The
  // calling thread participates, so the pool gets threads - 1 workers.
  const Strategy canonical = strategy.Canonical();
  ResolveAccessOptions resolve_options;
  resolve_options.propagation_mode = options_.propagation_mode;
  ThreadPool pool(std::min(threads, queries.size()) - 1);
  std::mutex error_mu;
  Status first_error;
  pool.ParallelFor(0, queries.size(), [&](size_t i) {
    auto mode = ResolveAccess(dag_, eacm_, queries[i].subject,
                              queries[i].object, queries[i].right, canonical,
                              resolve_options);
    if (!mode.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = mode.status();
      return;
    }
    results[i] = *mode;
  });
  UCR_RETURN_IF_ERROR(first_error);
  return results;
}

StatusOr<std::vector<acm::Mode>>
AccessControlSystem::CheckAccessAllStrategies(graph::NodeId subject,
                                              acm::ObjectId object,
                                              acm::RightId right) {
  if (subject >= dag_.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= eacm_.object_count() || right >= eacm_.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  const std::vector<std::optional<acm::Mode>> labels =
      eacm_.ExtractLabels(dag_.node_count(), object, right);
  std::optional<graph::AncestorSubgraph> local_sub;
  const graph::AncestorSubgraph* sub;
  if (options_.enable_subgraph_cache) {
    sub = &subgraph_cache_.Get(dag_, subject);
  } else {
    local_sub.emplace(dag_, subject);
    sub = &*local_sub;
  }
  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;
  const RightsBag all_rights =
      PropagateAggregated(*sub, labels, prop_options);

  std::vector<acm::Mode> out;
  out.reserve(AllStrategies().size());
  for (const Strategy& s : AllStrategies()) {
    out.push_back(Resolve(all_rights, s));
  }
  return out;
}

StatusOr<std::vector<acm::Mode>>
AccessControlSystem::MaterializeEffectiveColumn(acm::ObjectId object,
                                                acm::RightId right,
                                                const Strategy& strategy) {
  if (object >= eacm_.object_count() || right >= eacm_.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  const std::vector<std::optional<acm::Mode>> labels =
      eacm_.ExtractLabels(dag_.node_count(), object, right);
  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;
  const std::vector<RightsBag> bags =
      PropagateWholeDag(dag_, labels, prop_options);

  std::vector<acm::Mode> column;
  column.reserve(bags.size());
  for (const RightsBag& bag : bags) {
    column.push_back(Resolve(bag, strategy));
  }
  return column;
}

}  // namespace ucr::core
