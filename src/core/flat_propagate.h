#ifndef UCR_CORE_FLAT_PROPAGATE_H_
#define UCR_CORE_FLAT_PROPAGATE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/propagate.h"
#include "core/rights_bag.h"
#include "graph/dag.h"
#include "graph/scratch_subgraph.h"
#include "obs/profiler.h"

namespace ucr::core {

/// \brief Whole-hierarchy adapter for `FlatPropagator`: presents a
/// `Dag` through the same interface a sub-graph view offers, with
/// local ids equal to global ids and a caller-supplied topological
/// order (compute it once per refresh, reuse it for every column).
struct FlatDagView {
  const graph::Dag* dag;
  std::span<const graph::NodeId> topo;

  size_t member_count() const { return dag->node_count(); }
  graph::NodeId global_id(graph::NodeId v) const { return v; }
  std::span<const graph::NodeId> parents(graph::NodeId v) const {
    return dag->parents(v);
  }
  std::span<const graph::NodeId> topological_order() const { return topo; }
};

/// \brief Allocation-free propagation kernel (DESIGN.md §7): the
/// production replacement for `PropagateAggregated` /
/// `PropagateWholeDag` on the per-query hot path.
///
/// All per-node (distance, mode) → multiplicity bags live in one
/// pooled structure-of-arrays buffer (`pool_dis_` / `pool_mode_` /
/// `pool_mult_`) indexed by per-local-node [begin, end) offsets; bags
/// are appended in topological order by merging the parents' bags, so
/// there is no per-node vector and no per-node heap traffic. Explicit
/// labels arrive as a sparse ACM column (`ExplicitAcm::Column`) and
/// are scattered into epoch-stamped global-id-indexed arrays — staging
/// a new column is O(column size), not O(node count), and needs no
/// clearing.
///
/// Results are bag-for-bag identical to the classic engines
/// (multiplicities, entry order, and `PropagateStats` included); the
/// differential tests assert this over all 48 canonical strategies,
/// every propagation mode, and randomized DAGs.
///
/// One instance per thread (see `HotPath`); every buffer only ever
/// grows, so steady-state propagation performs zero heap allocations.
class FlatPropagator {
 public:
  FlatPropagator() = default;

  FlatPropagator(const FlatPropagator&) = delete;
  FlatPropagator& operator=(const FlatPropagator&) = delete;

  /// Stages the explicit labels of one (object, right) column for the
  /// next propagation. `node_count` bounds the subject ids considered,
  /// exactly like `ExplicitAcm::ExtractLabels`. Must be called before
  /// the first propagation; stays staged until the next `SetLabels`.
  void SetLabels(std::span<const acm::ExplicitAcm::ColumnEntry> column,
                 size_t node_count);

  /// \brief Propagates over `view` and returns the sink's normalized
  /// `allRights` bag — equal to `PropagateAggregated(sub, labels,
  /// options, stats)` on the equivalent sub-graph.
  ///
  /// `View` is either a `graph::ScratchSubgraphView` or an
  /// `AncestorSubgraph` (e.g. one shared through a sub-graph cache).
  /// The returned span aliases an internal buffer: it is invalidated
  /// by the next propagation on this instance.
  template <typename View>
  std::span<const RightsEntry> PropagateSink(
      const View& view, const PropagateOptions& options = {},
      PropagateStats* stats = nullptr) {
    // Phase attribution (DESIGN.md §14): no-op unless the enclosing
    // query is sampled.
    obs::ScopedPhaseTimer phase_timer(obs::Phase::kPropagate);
    Run(view, options, stats);
    return MaterializeBag(static_cast<graph::LocalId>(view.sink()));
  }

  /// \brief Propagates over every member of `view` (typically a
  /// `FlatDagView` for effective-matrix columns). Per-member bags are
  /// then read through `bag(v)`; each equals the corresponding
  /// `PropagateWholeDag` / `PropagateAggregatedAll` result.
  template <typename View>
  void PropagateAll(const View& view, const PropagateOptions& options = {},
                    PropagateStats* stats = nullptr) {
    Run(view, options, stats);
  }

  /// The bag of member `v` after `PropagateAll`. The span aliases a
  /// reusable buffer: it is invalidated by the next `bag` call or
  /// propagation.
  std::span<const RightsEntry> bag(graph::LocalId v) {
    return MaterializeBag(v);
  }

 private:
  static uint64_t SatAdd(uint64_t a, uint64_t b) {
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
  }

  static void Observe(PropagateStats* stats, uint32_t dis) {
    stats->tuples_processed = SatAdd(stats->tuples_processed, 1);
    stats->max_distance = std::max(stats->max_distance, dis);
  }

  /// The Step-2 seed of member `v`: its staged explicit label, the 'd'
  /// marker if it is an unlabeled root, or nothing.
  template <typename View>
  std::optional<acm::PropagatedMode> SeedOf(const View& view,
                                            graph::LocalId v) const {
    const graph::NodeId g = view.global_id(v);
    assert(g < label_stamp_.size());
    if (label_stamp_[g] == label_epoch_) {
      return acm::ToPropagated(label_mode_[g]);
    }
    if (view.parents(v).empty()) return acm::PropagatedMode::kDefault;
    return std::nullopt;
  }

  template <typename View>
  void Run(const View& view, const PropagateOptions& options,
           PropagateStats* stats) {
    assert(label_epoch_ > 0 && "SetLabels() must precede propagation");
    const size_t n = view.member_count();
    if (bag_begin_.size() < n) {
      bag_begin_.resize(n);
      bag_end_.resize(n);
      clean_.resize(n);
    }
    pool_dis_.clear();
    pool_mode_.clear();
    pool_mult_.clear();

    const PropagationMode pmode = options.propagation_mode;
    for (const auto vv : view.topological_order()) {
      const auto v = static_cast<graph::LocalId>(vv);
      const std::optional<acm::PropagatedMode> seed = SeedOf(view, v);

      // Gather the parents' forwarded bags, shifted one edge down.
      // Under kSecondWins a labeled parent forwards only its own label
      // (the pool stores *result* bags, so recompute its seed here);
      // under the other modes a node forwards its whole result bag.
      merge_.clear();
      for (const auto pp : view.parents(v)) {
        const auto p = static_cast<graph::LocalId>(pp);
        if (pmode == PropagationMode::kSecondWins) {
          const std::optional<acm::PropagatedMode> parent_seed =
              SeedOf(view, p);
          if (parent_seed.has_value()) {
            merge_.push_back(RightsEntry{1, *parent_seed, 1});
            continue;
          }
        }
        for (size_t i = bag_begin_[p]; i < bag_end_[p]; ++i) {
          merge_.push_back(
              RightsEntry{pool_dis_[i] + 1, pool_mode_[i], pool_mult_[i]});
        }
      }
      NormalizeMerge();

      // kFirstWins: a seed counts once per root-path with no labeled
      // node strictly above v (same recurrence as the classic engine).
      uint64_t seed_multiplicity = 1;
      if (pmode == PropagationMode::kFirstWins) {
        uint64_t c = 0;
        if (view.parents(v).empty()) {
          c = 1;
        } else {
          for (const auto pp : view.parents(v)) {
            const auto p = static_cast<graph::LocalId>(pp);
            if (!SeedOf(view, p).has_value()) c = SatAdd(c, clean_[p]);
          }
        }
        clean_[v] = c;
        seed_multiplicity = c;
      }

      // Append v's result bag. The seed (distance 0) sorts strictly
      // before every arriving entry (distance >= 1), so prepending it
      // to the normalized merge buffer *is* the normalized bag.
      bag_begin_[v] = pool_dis_.size();
      if (seed.has_value() && seed_multiplicity > 0) {
        pool_dis_.push_back(0);
        pool_mode_.push_back(*seed);
        pool_mult_.push_back(seed_multiplicity);
      }
      for (const RightsEntry& e : merge_) {
        pool_dis_.push_back(e.dis);
        pool_mode_.push_back(e.mode);
        pool_mult_.push_back(e.multiplicity);
      }
      bag_end_[v] = pool_dis_.size();

      if (stats != nullptr) {
        for (size_t i = bag_begin_[v]; i < bag_end_[v]; ++i) {
          Observe(stats, pool_dis_[i]);
        }
      }
    }
  }

  /// Sorts `merge_` by (dis, mode) and merges equal groups in place.
  void NormalizeMerge();

  /// Copies the SoA slice of `v` into the reusable AoS output buffer.
  std::span<const RightsEntry> MaterializeBag(graph::LocalId v);

  // Staged column labels, global-id-indexed and epoch-stamped:
  // `label_mode_[g]` is meaningful only while `label_stamp_[g] ==
  // label_epoch_`. Never cleared.
  uint64_t label_epoch_ = 0;
  std::vector<uint64_t> label_stamp_;
  std::vector<acm::Mode> label_mode_;

  // The SoA bag pool plus per-local-node offset ranges into it.
  std::vector<uint32_t> pool_dis_;
  std::vector<acm::PropagatedMode> pool_mode_;
  std::vector<uint64_t> pool_mult_;
  std::vector<size_t> bag_begin_;
  std::vector<size_t> bag_end_;

  // kFirstWins clean-path counts, assigned in topological order.
  std::vector<uint64_t> clean_;

  // Reused per node / per bag read (clear() keeps capacity).
  std::vector<RightsEntry> merge_;
  std::vector<RightsEntry> out_;
};

/// \brief Per-thread bundle of the hot-path scratch state: one
/// sub-graph extraction arena plus one propagation kernel.
///
/// `ThreadLocal()` hands every thread its own warm instance, so batch
/// workers, the serving path, and matrix materialization all reuse
/// grown buffers without locking. Instances work across hierarchies
/// of different sizes (epoch stamps invalidate stale state).
struct HotPath {
  graph::SubgraphScratch scratch;
  FlatPropagator propagator;

  static HotPath& ThreadLocal();
};

}  // namespace ucr::core

#endif  // UCR_CORE_FLAT_PROPAGATE_H_
