#include "core/resolve.h"

#include <algorithm>
#include <vector>

#include "core/flat_propagate.h"
#include "graph/ancestor_subgraph.h"
#include "graph/scratch_subgraph.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/shadow.h"
#include "obs/trace.h"

namespace ucr::core {

namespace {

using acm::Mode;
using acm::PropagatedMode;

/// End-to-end query telemetry (DESIGN.md §8). Counter/histogram
/// handles are interned once; per-query cost is two clock reads, one
/// sharded increment, and one sharded observe — all lock-free and
/// allocation-free, so the §7 zero-allocation bound holds with
/// metrics ON (asserted by tests/hotpath_alloc_test.cc).
struct ResolveMetrics {
  obs::Counter& indexed = obs::Registry::Global().GetCounter(
      "ucr_resolve_indexed_queries_total",
      "ResolveAccess queries answered by the reachability index");
  obs::Histogram& compressed_entries = obs::Registry::Global().GetHistogram(
      "ucr_reach_compressed_entries",
      "Composed-bag entries per indexed query (log2 buckets)");
  obs::Histogram& pruned_nodes = obs::Registry::Global().GetHistogram(
      "ucr_reach_pruned_nodes",
      "Sub-graph members skipped per indexed query (shadow-sampled)");
  obs::Counter& fast = obs::Registry::Global().GetCounter(
      "ucr_resolve_fast_queries_total",
      "ResolveAccess queries answered by the allocation-free hot path");
  obs::Counter& classic = obs::Registry::Global().GetCounter(
      "ucr_resolve_classic_queries_total",
      "ResolveAccess queries answered by the classic aggregated engine");
  obs::Counter& literal = obs::Registry::Global().GetCounter(
      "ucr_resolve_literal_queries_total",
      "ResolveAccess queries answered by the paper-literal tuple engine");
  obs::Histogram& latency = obs::Registry::Global().GetHistogram(
      "ucr_resolve_latency_ns", "End-to-end ResolveAccess latency (ns)");
};

ResolveMetrics& GetResolveMetrics() {
  static ResolveMetrics* metrics = new ResolveMetrics();
  return *metrics;
}

/// Fills a tracer record from the query identity, the span clock
/// stamps, and the Fig. 4 trace, then hands it to the global sampler.
[[gnu::noinline, gnu::cold]] void RecordQueryTrace(graph::NodeId subject, acm::ObjectId object,
                      acm::RightId right, const Strategy& canonical,
                      bool fast_path, uint64_t t_start, uint64_t t_extract,
                      uint64_t t_propagate, uint64_t t_end,
                      const ResolveTrace& trace,
                      const obs::PhaseBreakdown& phases) {
  obs::QueryTraceRecord record;
  record.subject = subject;
  record.object = object;
  record.right = right;
  record.strategy_index = canonical.CanonicalIndex();
  record.fast_path = fast_path;
  record.extract_ns = t_extract - t_start;
  record.propagate_ns = t_propagate - t_extract;
  record.resolve_ns = t_end - t_propagate;
  record.total_ns = t_end - t_start;
  record.phases = phases;
  record.has_majority = trace.c1.has_value();
  record.c1 = trace.c1.value_or(0);
  record.c2 = trace.c2.value_or(0);
  record.auth_computed = trace.auth_computed;
  record.auth_has_positive = trace.auth_has_positive;
  record.auth_has_negative = trace.auth_has_negative;
  record.returned_line = trace.returned_line;
  record.granted = trace.result == Mode::kPositive;
  const uint64_t sequence = obs::QueryTracer::Global().Record(record);
  // Exemplar: the latency histogram keeps this sample's trace id so
  // /tracez can resolve a tail bucket back to its Fig. 4 derivation.
  GetResolveMetrics().latency.RecordExemplar(record.total_ns, sequence,
                                             subject, object, right);
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/// Copies a ResolveTrace's Fig. 4 fields into a tracer record (the
/// shape the obs-layer formatters consume).
obs::QueryTraceRecord Fig4Record(const ResolveTrace& trace) {
  obs::QueryTraceRecord record;
  record.has_majority = trace.c1.has_value();
  record.c1 = trace.c1.value_or(0);
  record.c2 = trace.c2.value_or(0);
  record.auth_computed = trace.auth_computed;
  record.auth_has_positive = trace.auth_has_positive;
  record.auth_has_negative = trace.auth_has_negative;
  record.returned_line = trace.returned_line;
  record.granted = trace.result == Mode::kPositive;
  return record;
}

/// A (dis, mode) group after the default rule has been applied: only
/// '+' and '-' survive (Fig. 4 lines 2–3).
struct WorkingEntry {
  uint32_t dis;
  Mode mode;
  uint64_t multiplicity;
};

/// Applies the default rule: drops 'd' groups (dRule = "0") or
/// rewrites them to the default mode, merging with any equal-distance
/// explicit group.
std::vector<WorkingEntry> ApplyDefaultRule(const RightsBag& all_rights,
                                           DefaultRule rule) {
  std::vector<WorkingEntry> out;
  for (const RightsEntry& e : all_rights.entries()) {
    Mode mode;
    if (e.mode == PropagatedMode::kDefault) {
      if (rule == DefaultRule::kNone) continue;  // σ mode <> 'd' (line 2).
      mode = rule == DefaultRule::kPositive ? Mode::kPositive
                                            : Mode::kNegative;
    } else {
      mode = e.mode == PropagatedMode::kPositive ? Mode::kPositive
                                                 : Mode::kNegative;
    }
    out.push_back(WorkingEntry{e.dis, mode, e.multiplicity});
  }
  // Merge groups made equal by the rewrite (bag union of multiplicities).
  std::sort(out.begin(), out.end(),
            [](const WorkingEntry& a, const WorkingEntry& b) {
              if (a.dis != b.dis) return a.dis < b.dis;
              return a.mode < b.mode;
            });
  size_t w = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (w > 0 && out[w - 1].dis == out[i].dis &&
        out[w - 1].mode == out[i].mode) {
      out[w - 1].multiplicity =
          SatAdd(out[w - 1].multiplicity, out[i].multiplicity);
    } else {
      out[w++] = out[i];
    }
  }
  out.resize(w);
  return out;
}

/// σ dis = lRule(dis): the locality filter (Fig. 4 lines 5 and 7).
std::vector<WorkingEntry> ApplyLocalityFilter(
    const std::vector<WorkingEntry>& entries, LocalityRule rule) {
  if (rule == LocalityRule::kIdentity || entries.empty()) return entries;
  uint32_t target = entries.front().dis;
  for (const WorkingEntry& e : entries) {
    target = rule == LocalityRule::kMostSpecific ? std::min(target, e.dis)
                                                 : std::max(target, e.dis);
  }
  std::vector<WorkingEntry> out;
  for (const WorkingEntry& e : entries) {
    if (e.dis == target) out.push_back(e);
  }
  return out;
}

struct Counts {
  uint64_t positive = 0;
  uint64_t negative = 0;
};

Counts CountModes(const std::vector<WorkingEntry>& entries) {
  Counts c;
  for (const WorkingEntry& e : entries) {
    if (e.mode == Mode::kPositive) {
      c.positive = SatAdd(c.positive, e.multiplicity);
    } else {
      c.negative = SatAdd(c.negative, e.multiplicity);
    }
  }
  return c;
}

/// Streaming counterpart of ApplyDefaultRule for a single entry:
/// nullopt means the entry is dropped (σ mode <> 'd' with dRule = 0).
std::optional<Mode> EffectiveModeOf(const RightsEntry& e, DefaultRule rule) {
  if (e.mode == PropagatedMode::kDefault) {
    if (rule == DefaultRule::kNone) return std::nullopt;
    return rule == DefaultRule::kPositive ? Mode::kPositive : Mode::kNegative;
  }
  return e.mode == PropagatedMode::kPositive ? Mode::kPositive
                                             : Mode::kNegative;
}

/// Per-thread scratch for `ComposeIndexedSinkBag`: a per-class seed
/// cache (stamped per composition, so each class's row is probed once
/// per query however many label entries reference it) plus the output
/// bag buffer. Buffers only grow — steady state allocates nothing.
struct ComposeScratch {
  uint64_t epoch = 0;
  std::vector<uint64_t> stamp;      ///< Per-class: epoch of `seed`.
  std::vector<int8_t> seed;         ///< Encoded per-class column seed.
  std::vector<RightsEntry> bag;

  static ComposeScratch& ThreadLocal() {
    thread_local ComposeScratch scratch;
    return scratch;
  }
};

/// Encoded column seed of one supernode class: no seed, or a
/// propagated mode (the int8 domain of `ComposeScratch::seed`).
constexpr int8_t kSeedNone = -1;

int8_t EncodeSeed(std::optional<PropagatedMode> mode) {
  return mode.has_value() ? static_cast<int8_t>(*mode) : kSeedNone;
}

/// The mode class `cls` seeds into column (object, right), per the
/// `FlatPropagator::SeedOf` rules the class key captures: its row's
/// explicit entry if present, else 'd' for root classes, else nothing.
/// Under kFirstWins only root classes seed (every non-root's
/// clean-path count is zero because roots always carry a seed).
std::optional<PropagatedMode> ClassSeed(
    const graph::ReachabilityIndex::ClassInfo& info, acm::ObjectId object,
    acm::RightId right, PropagationMode pmode) {
  if (pmode == PropagationMode::kFirstWins && !info.is_root) {
    return std::nullopt;
  }
  const std::optional<Mode> explicit_mode =
      acm::ExplicitAcm::ReachRowMode(info.row, object, right);
  if (explicit_mode.has_value()) return acm::ToPropagated(*explicit_mode);
  if (info.is_root) return PropagatedMode::kDefault;
  return std::nullopt;
}

}  // namespace

bool ReachIndexUsable(const graph::ReachabilityIndex* index,
                      const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                      const ResolveAccessOptions& options) {
  return index != nullptr && options.use_reachability_index &&
         index->ready() &&
         options.propagation_mode != PropagationMode::kSecondWins &&
         index->dag_generation() == dag.generation() &&
         index->acm_epoch() == eacm.epoch() &&
         index->node_count() == dag.node_count();
}

std::span<const RightsEntry> ComposeIndexedSinkBag(
    const graph::ReachabilityIndex& index, graph::NodeId subject,
    acm::ObjectId object, acm::RightId right, PropagationMode mode) {
  // Phase attribution (DESIGN.md §14): composition replaces both
  // extraction and propagation on the indexed path.
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCompose);
  using ClassId = graph::ReachabilityIndex::ClassId;
  ComposeScratch& scratch = ComposeScratch::ThreadLocal();
  if (scratch.stamp.size() < index.class_count()) {
    scratch.stamp.resize(index.class_count(), 0);
    scratch.seed.resize(index.class_count(), kSeedNone);
  }
  const uint64_t epoch = ++scratch.epoch;
  const auto seed_of = [&](ClassId cls) {
    if (scratch.stamp[cls] != epoch) {
      scratch.stamp[cls] = epoch;
      scratch.seed[cls] =
          EncodeSeed(ClassSeed(index.class_info(cls), object, right, mode));
    }
    return scratch.seed[cls];
  };

  scratch.bag.clear();
  // The subject's own distance-0 seed. Interior subjects (unlabeled
  // non-roots) never seed; under kFirstWins a non-root's seed has
  // clean-path multiplicity zero, which `ClassSeed` already encodes.
  const ClassId own = index.class_of(subject);
  if (own != graph::ReachabilityIndex::kInteriorClass) {
    const int8_t s = seed_of(own);
    if (s != kSeedNone) {
      scratch.bag.push_back(
          RightsEntry{0, static_cast<PropagatedMode>(s), 1});
    }
  }
  // One (dis, mode, count) contribution per label entry whose class
  // seeds this column.
  for (const graph::ReachabilityIndex::ProfileEntry& e :
       index.label(subject)) {
    const int8_t s = seed_of(e.cls);
    if (s == kSeedNone) continue;
    scratch.bag.push_back(
        RightsEntry{e.dis, static_cast<PropagatedMode>(s), e.count});
  }
  // Normalize: sort by (dis, mode) and merge classes that landed on
  // the same group with saturating adds — associativity makes the
  // result equal to the engines' progressively-merged multiplicities.
  std::sort(scratch.bag.begin(), scratch.bag.end(),
            [](const RightsEntry& a, const RightsEntry& b) {
              if (a.dis != b.dis) return a.dis < b.dis;
              return a.mode < b.mode;
            });
  size_t w = 0;
  for (size_t i = 0; i < scratch.bag.size(); ++i) {
    if (w > 0 && scratch.bag[w - 1].dis == scratch.bag[i].dis &&
        scratch.bag[w - 1].mode == scratch.bag[i].mode) {
      scratch.bag[w - 1].multiplicity = SatAdd(
          scratch.bag[w - 1].multiplicity, scratch.bag[i].multiplicity);
    } else {
      scratch.bag[w++] = scratch.bag[i];
    }
  }
  scratch.bag.resize(w);
  return scratch.bag;
}

std::string ResolveTrace::AuthToString() const {
  if (!auth_computed) return "n/a";
  if (auth_has_positive && auth_has_negative) return "+,-";
  if (auth_has_positive) return "+";
  if (auth_has_negative) return "-";
  return "{}";
}

std::string ResolveTrace::C1ToString() const {
  return c1.has_value() ? std::to_string(*c1) : "n/a";
}

std::string ResolveTrace::C2ToString() const {
  return c2.has_value() ? std::to_string(*c2) : "n/a";
}

acm::Mode Resolve(const RightsBag& all_rights, const Strategy& strategy,
                  ResolveTrace* trace) {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kResolve);
  const Strategy s = strategy.Canonical();
  ResolveTrace local_trace;
  ResolveTrace& t = trace != nullptr ? *trace : local_trace;
  t = ResolveTrace{};

  const Mode preferred = s.preference_rule == PreferenceRule::kPositive
                             ? Mode::kPositive
                             : Mode::kNegative;

  // Lines 1–3: propagation already happened; apply the default rule.
  const std::vector<WorkingEntry> working =
      ApplyDefaultRule(all_rights, s.default_rule);

  // Lines 4–6: the majority policy, counting either the whole bag
  // ("before", mnemonics M[LG]?P) or the locality-filtered bag
  // ("after", mnemonics [LG]MP). A strict majority decides.
  if (s.majority_rule != MajorityRule::kSkip) {
    const Counts counts =
        s.majority_rule == MajorityRule::kBefore
            ? CountModes(working)
            : CountModes(ApplyLocalityFilter(working, s.locality_rule));
    t.c1 = counts.positive;
    t.c2 = counts.negative;
    if (counts.positive > counts.negative) {
      t.result = Mode::kPositive;
      t.returned_line = 6;
      return t.result;
    }
    if (counts.negative > counts.positive) {
      t.result = Mode::kNegative;
      t.returned_line = 6;
      return t.result;
    }
  }

  // Lines 7–8: locality filter, then the Auth set of surviving modes.
  const std::vector<WorkingEntry> surviving =
      ApplyLocalityFilter(working, s.locality_rule);
  t.auth_computed = true;
  for (const WorkingEntry& e : surviving) {
    if (e.mode == Mode::kPositive) t.auth_has_positive = true;
    if (e.mode == Mode::kNegative) t.auth_has_negative = true;
  }
  if (t.auth_has_positive != t.auth_has_negative) {
    t.result = t.auth_has_positive ? Mode::kPositive : Mode::kNegative;
    t.returned_line = 8;
    return t.result;
  }

  // Line 9: the preference rule settles everything else — a genuine
  // conflict (both modes survive) or an empty set (no authorization
  // derivable at all).
  t.result = preferred;
  t.returned_line = 9;
  return t.result;
}

acm::Mode ResolveEntries(std::span<const RightsEntry> all_rights,
                         const Strategy& strategy, ResolveTrace* trace) {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kResolve);
  const Strategy s = strategy.Canonical();
  ResolveTrace local_trace;
  ResolveTrace& t = trace != nullptr ? *trace : local_trace;
  t = ResolveTrace{};

  const Mode preferred = s.preference_rule == PreferenceRule::kPositive
                             ? Mode::kPositive
                             : Mode::kNegative;

  // The locality target distance over surviving entries (streaming
  // min/max replaces the filtered copy of ApplyLocalityFilter).
  bool any_surviving = false;
  uint32_t target = 0;
  if (s.locality_rule != LocalityRule::kIdentity) {
    for (const RightsEntry& e : all_rights) {
      if (!EffectiveModeOf(e, s.default_rule).has_value()) continue;
      if (!any_surviving) {
        target = e.dis;
        any_surviving = true;
      } else {
        target = s.locality_rule == LocalityRule::kMostSpecific
                     ? std::min(target, e.dis)
                     : std::max(target, e.dis);
      }
    }
  }
  auto survives_locality = [&](const RightsEntry& e) {
    return s.locality_rule == LocalityRule::kIdentity || e.dis == target;
  };

  // Lines 4–6: streamed majority counters.
  if (s.majority_rule != MajorityRule::kSkip) {
    uint64_t c1 = 0;
    uint64_t c2 = 0;
    for (const RightsEntry& e : all_rights) {
      const std::optional<Mode> mode = EffectiveModeOf(e, s.default_rule);
      if (!mode.has_value()) continue;
      if (s.majority_rule == MajorityRule::kAfter && !survives_locality(e)) {
        continue;
      }
      if (*mode == Mode::kPositive) {
        c1 = SatAdd(c1, e.multiplicity);
      } else {
        c2 = SatAdd(c2, e.multiplicity);
      }
    }
    t.c1 = c1;
    t.c2 = c2;
    if (c1 != c2) {
      t.result = c1 > c2 ? Mode::kPositive : Mode::kNegative;
      t.returned_line = 6;
      return t.result;
    }
  }

  // Lines 7–8: the Auth set of modes surviving the locality filter.
  t.auth_computed = true;
  for (const RightsEntry& e : all_rights) {
    const std::optional<Mode> mode = EffectiveModeOf(e, s.default_rule);
    if (!mode.has_value() || !survives_locality(e)) continue;
    if (*mode == Mode::kPositive) {
      t.auth_has_positive = true;
    } else {
      t.auth_has_negative = true;
    }
  }
  if (t.auth_has_positive != t.auth_has_negative) {
    t.result = t.auth_has_positive ? Mode::kPositive : Mode::kNegative;
    t.returned_line = 8;
    return t.result;
  }

  // Line 9: preference settles conflicts and the empty set.
  t.result = preferred;
  t.returned_line = 9;
  return t.result;
}

[[gnu::noinline, gnu::cold]] void ShadowVerifyDecision(
    const graph::Dag& dag, const acm::ExplicitAcm& eacm,
    graph::NodeId subject, acm::ObjectId object, acm::RightId right,
    const Strategy& canonical, const PropagateOptions& prop_options,
    acm::Mode fast_mode, const ResolveTrace& fast_trace,
    size_t indexed_bag_entries) {
  // Deliberate sampled work: its heap traffic is excluded from the
  // hot path's zero-allocation budget (util/alloc_counter.cc), and its
  // re-resolution must not pollute the query's phase breakdown.
  obs::ScopedAllocExclusion off_budget;
  obs::ScopedPhaseSuspend no_phases;

  // Reusable per-thread staging so the steady-state oracle cost is
  // O(sub-graph), not O(node-count) vector churn per shadowed query.
  struct ShadowScratch {
    graph::SubgraphScratch extraction;
    std::vector<std::optional<acm::Mode>> labels;
  };
  thread_local ShadowScratch scratch;
  const size_t node_count = dag.node_count();
  if (scratch.labels.size() < node_count) scratch.labels.resize(node_count);

  // Stage the sparse column into the dense label view the classic
  // engine consumes, exactly like ExtractLabels would build it.
  const std::span<const acm::ExplicitAcm::ColumnEntry> column =
      eacm.Column(object, right);
  for (const acm::ExplicitAcm::ColumnEntry& e : column) {
    if (e.subject < node_count) scratch.labels[e.subject] = e.mode;
  }
  const graph::AncestorSubgraph sub(dag, subject, scratch.extraction);
  if (indexed_bag_entries != SIZE_MAX) {
    // The oracle just extracted the sub-graph the index skipped:
    // record how much work the compression saved on this query.
    const size_t members = sub.member_count();
    GetResolveMetrics().pruned_nodes.Observe(
        members > indexed_bag_entries ? members - indexed_bag_entries : 0);
  }
  ResolveTrace oracle_trace;
  const RightsBag bag = PropagateAggregated(
      sub, LabelView(scratch.labels.data(), node_count), prop_options);
  acm::Mode oracle_mode = Resolve(bag, canonical, &oracle_trace);
  for (const acm::ExplicitAcm::ColumnEntry& e : column) {
    if (e.subject < node_count) scratch.labels[e.subject].reset();
  }

  if (obs::ShadowVerifier::perturb_oracle_for_testing()) {
    oracle_mode = oracle_mode == Mode::kPositive ? Mode::kNegative
                                                 : Mode::kPositive;
    oracle_trace.result = oracle_mode;
  }

  obs::ShadowVerifier& verifier = obs::ShadowVerifier::Global();
  verifier.RecordCheck();
  const bool identical =
      oracle_mode == fast_mode && oracle_trace.c1 == fast_trace.c1 &&
      oracle_trace.c2 == fast_trace.c2 &&
      oracle_trace.auth_computed == fast_trace.auth_computed &&
      oracle_trace.auth_has_positive == fast_trace.auth_has_positive &&
      oracle_trace.auth_has_negative == fast_trace.auth_has_negative &&
      oracle_trace.returned_line == fast_trace.returned_line;
  if (identical) return;

  obs::ShadowVerifier::Mismatch mismatch;
  mismatch.subject = subject;
  mismatch.object = object;
  mismatch.right = right;
  mismatch.strategy_index = canonical.CanonicalIndex();
  mismatch.fast_granted = fast_mode == Mode::kPositive;
  mismatch.oracle_granted = oracle_mode == Mode::kPositive;
  char derivation[160];
  obs::FormatFig4Compact(Fig4Record(fast_trace), derivation,
                         sizeof(derivation));
  mismatch.fast_derivation = derivation;
  obs::FormatFig4Compact(Fig4Record(oracle_trace), derivation,
                         sizeof(derivation));
  mismatch.oracle_derivation = derivation;
  verifier.RecordMismatch(std::move(mismatch));
}

StatusOr<acm::Mode> ResolveAccess(const graph::Dag& dag,
                                  const acm::ExplicitAcm& eacm,
                                  graph::NodeId subject, acm::ObjectId object,
                                  acm::RightId right, const Strategy& strategy,
                                  const ResolveAccessOptions& options,
                                  ResolveTrace* trace, PropagateStats* stats,
                                  const graph::ReachabilityIndex* reach_index) {
  if (subject >= dag.node_count()) {
    return Status::OutOfRange("subject id " + std::to_string(subject) +
                              " out of range");
  }
  if (object >= eacm.object_count()) {
    return Status::OutOfRange("object id out of range");
  }
  if (right >= eacm.right_count()) {
    return Status::OutOfRange("right id out of range");
  }

  PropagateOptions prop_options;
  prop_options.propagation_mode = options.propagation_mode;

  // Per-query telemetry. Unsampled queries pay only the sampler's
  // thread-local countdown plus one counter increment; clock reads and
  // the latency histogram fire only for sampled queries, so the
  // histogram is a sampled distribution (ucr_admin's sweep runs at
  // interval 1 to make it exhaustive). Everything vanishes under
  // UCR_METRICS=OFF.
  const bool sampled = obs::QueryTracer::ShouldSample();
  const uint64_t t_start = sampled ? obs::NowNs() : 0;

  // Owner scope of this query's phase attribution (DESIGN.md §14): the
  // component-internal phase timers arm only when a collection is
  // active. A no-op when the caller (CheckAccess, the batch resolver,
  // a snapshot) already owns the scope, or when unsampled.
  obs::ScopedPhaseCollection phases(sampled);

  // Reachability-index path (DESIGN.md §12): the sink bag is composed
  // from the subject's compressed label in O(label) — no extraction,
  // no propagation. `stats` describe the traversal this path skips,
  // so their presence forces the fast path (which reports them
  // exactly); decisions and traces are bit-identical either way.
  if (stats == nullptr && !options.use_literal_engine &&
      ReachIndexUsable(reach_index, dag, eacm, options)) {
    const std::span<const RightsEntry> sink_bag = ComposeIndexedSinkBag(
        *reach_index, subject, object, right, options.propagation_mode);
    const uint64_t t_compose = sampled ? obs::NowNs() : 0;
    const bool shadowed = obs::ShadowVerifier::ShouldShadow();
    ResolveTrace sampled_trace;
    ResolveTrace* trace_out =
        trace != nullptr ? trace
                         : (sampled || shadowed ? &sampled_trace : nullptr);
    const acm::Mode mode = ResolveEntries(sink_bag, strategy, trace_out);
    if constexpr (obs::kEnabled) {
      ResolveMetrics& m = GetResolveMetrics();
      m.indexed.Inc();
      m.compressed_entries.Observe(sink_bag.size());
      if (sampled) [[unlikely]] {
        const uint64_t t_end = obs::NowNs();
        m.latency.Observe(t_end - t_start);
        RecordQueryTrace(subject, object, right, strategy.Canonical(),
                         /*fast_path=*/true, t_start, t_compose, t_compose,
                         t_end, *trace_out, phases.Snapshot());
      }
      if (shadowed) [[unlikely]] {
        ShadowVerifyDecision(dag, eacm, subject, object, right,
                             strategy.Canonical(), prop_options, mode,
                             *trace_out, sink_bag.size());
      }
    }
    return mode;
  }

  if (options.use_fast_path && !options.use_literal_engine) {
    // Allocation-free hot path (DESIGN.md §7): scratch-arena
    // extraction, sparse column staging, flat propagation, streaming
    // resolve. Steady state touches no heap.
    HotPath& hot = HotPath::ThreadLocal();
    const graph::ScratchSubgraphView view = hot.scratch.Extract(dag, subject);
    const uint64_t t_extract = sampled ? obs::NowNs() : 0;
    hot.propagator.SetLabels(eacm.Column(object, right), dag.node_count());
    const std::span<const RightsEntry> sink_bag =
        hot.propagator.PropagateSink(view, prop_options, stats);
    const uint64_t t_propagate = sampled ? obs::NowNs() : 0;
    // Shadow verification (DESIGN.md §9) needs the fast path's Fig. 4
    // trace for the bit-for-bit comparison, so a shadowed query also
    // fills the stack-local trace.
    const bool shadowed = obs::ShadowVerifier::ShouldShadow();
    ResolveTrace sampled_trace;
    ResolveTrace* trace_out =
        trace != nullptr ? trace
                         : (sampled || shadowed ? &sampled_trace : nullptr);
    const acm::Mode mode = ResolveEntries(sink_bag, strategy, trace_out);
    if constexpr (obs::kEnabled) {
      GetResolveMetrics().fast.Inc();
      if (sampled) [[unlikely]] {
        const uint64_t t_end = obs::NowNs();
        GetResolveMetrics().latency.Observe(t_end - t_start);
        RecordQueryTrace(subject, object, right, strategy.Canonical(),
                         /*fast_path=*/true, t_start, t_extract, t_propagate,
                         t_end, *trace_out, phases.Snapshot());
      }
      if (shadowed) [[unlikely]] {
        ShadowVerifyDecision(dag, eacm, subject, object, right,
                             strategy.Canonical(), prop_options, mode,
                             *trace_out);
      }
    }
    return mode;
  }

  const graph::AncestorSubgraph sub(dag, subject);
  const std::vector<std::optional<acm::Mode>> labels =
      eacm.ExtractLabels(dag.node_count(), object, right);
  const uint64_t t_extract = sampled ? obs::NowNs() : 0;

  RightsBag all_rights;
  if (options.use_literal_engine) {
    UCR_ASSIGN_OR_RETURN(all_rights,
                         PropagateLiteral(sub, labels, prop_options, stats,
                                          options.literal_max_tuples));
  } else {
    all_rights = PropagateAggregated(sub, labels, prop_options, stats);
  }
  const uint64_t t_propagate = sampled ? obs::NowNs() : 0;
  ResolveTrace sampled_trace;
  ResolveTrace* trace_out =
      trace != nullptr ? trace : (sampled ? &sampled_trace : nullptr);
  const acm::Mode mode = Resolve(all_rights, strategy, trace_out);
  if constexpr (obs::kEnabled) {
    ResolveMetrics& m = GetResolveMetrics();
    (options.use_literal_engine ? m.literal : m.classic).Inc();
    if (sampled) [[unlikely]] {
      const uint64_t t_end = obs::NowNs();
      m.latency.Observe(t_end - t_start);
      RecordQueryTrace(subject, object, right, strategy.Canonical(),
                       /*fast_path=*/false, t_start, t_extract, t_propagate,
                       t_end, *trace_out, phases.Snapshot());
    }
  }
  return mode;
}

}  // namespace ucr::core
