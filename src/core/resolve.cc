#include "core/resolve.h"

#include <algorithm>
#include <vector>

namespace ucr::core {

namespace {

using acm::Mode;
using acm::PropagatedMode;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/// A (dis, mode) group after the default rule has been applied: only
/// '+' and '-' survive (Fig. 4 lines 2–3).
struct WorkingEntry {
  uint32_t dis;
  Mode mode;
  uint64_t multiplicity;
};

/// Applies the default rule: drops 'd' groups (dRule = "0") or
/// rewrites them to the default mode, merging with any equal-distance
/// explicit group.
std::vector<WorkingEntry> ApplyDefaultRule(const RightsBag& all_rights,
                                           DefaultRule rule) {
  std::vector<WorkingEntry> out;
  for (const RightsEntry& e : all_rights.entries()) {
    Mode mode;
    if (e.mode == PropagatedMode::kDefault) {
      if (rule == DefaultRule::kNone) continue;  // σ mode <> 'd' (line 2).
      mode = rule == DefaultRule::kPositive ? Mode::kPositive
                                            : Mode::kNegative;
    } else {
      mode = e.mode == PropagatedMode::kPositive ? Mode::kPositive
                                                 : Mode::kNegative;
    }
    out.push_back(WorkingEntry{e.dis, mode, e.multiplicity});
  }
  // Merge groups made equal by the rewrite (bag union of multiplicities).
  std::sort(out.begin(), out.end(),
            [](const WorkingEntry& a, const WorkingEntry& b) {
              if (a.dis != b.dis) return a.dis < b.dis;
              return a.mode < b.mode;
            });
  size_t w = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (w > 0 && out[w - 1].dis == out[i].dis &&
        out[w - 1].mode == out[i].mode) {
      out[w - 1].multiplicity =
          SatAdd(out[w - 1].multiplicity, out[i].multiplicity);
    } else {
      out[w++] = out[i];
    }
  }
  out.resize(w);
  return out;
}

/// σ dis = lRule(dis): the locality filter (Fig. 4 lines 5 and 7).
std::vector<WorkingEntry> ApplyLocalityFilter(
    const std::vector<WorkingEntry>& entries, LocalityRule rule) {
  if (rule == LocalityRule::kIdentity || entries.empty()) return entries;
  uint32_t target = entries.front().dis;
  for (const WorkingEntry& e : entries) {
    target = rule == LocalityRule::kMostSpecific ? std::min(target, e.dis)
                                                 : std::max(target, e.dis);
  }
  std::vector<WorkingEntry> out;
  for (const WorkingEntry& e : entries) {
    if (e.dis == target) out.push_back(e);
  }
  return out;
}

struct Counts {
  uint64_t positive = 0;
  uint64_t negative = 0;
};

Counts CountModes(const std::vector<WorkingEntry>& entries) {
  Counts c;
  for (const WorkingEntry& e : entries) {
    if (e.mode == Mode::kPositive) {
      c.positive = SatAdd(c.positive, e.multiplicity);
    } else {
      c.negative = SatAdd(c.negative, e.multiplicity);
    }
  }
  return c;
}

}  // namespace

std::string ResolveTrace::AuthToString() const {
  if (!auth_computed) return "n/a";
  if (auth_has_positive && auth_has_negative) return "+,-";
  if (auth_has_positive) return "+";
  if (auth_has_negative) return "-";
  return "{}";
}

std::string ResolveTrace::C1ToString() const {
  return c1.has_value() ? std::to_string(*c1) : "n/a";
}

std::string ResolveTrace::C2ToString() const {
  return c2.has_value() ? std::to_string(*c2) : "n/a";
}

acm::Mode Resolve(const RightsBag& all_rights, const Strategy& strategy,
                  ResolveTrace* trace) {
  const Strategy s = strategy.Canonical();
  ResolveTrace local_trace;
  ResolveTrace& t = trace != nullptr ? *trace : local_trace;
  t = ResolveTrace{};

  const Mode preferred = s.preference_rule == PreferenceRule::kPositive
                             ? Mode::kPositive
                             : Mode::kNegative;

  // Lines 1–3: propagation already happened; apply the default rule.
  const std::vector<WorkingEntry> working =
      ApplyDefaultRule(all_rights, s.default_rule);

  // Lines 4–6: the majority policy, counting either the whole bag
  // ("before", mnemonics M[LG]?P) or the locality-filtered bag
  // ("after", mnemonics [LG]MP). A strict majority decides.
  if (s.majority_rule != MajorityRule::kSkip) {
    const Counts counts =
        s.majority_rule == MajorityRule::kBefore
            ? CountModes(working)
            : CountModes(ApplyLocalityFilter(working, s.locality_rule));
    t.c1 = counts.positive;
    t.c2 = counts.negative;
    if (counts.positive > counts.negative) {
      t.result = Mode::kPositive;
      t.returned_line = 6;
      return t.result;
    }
    if (counts.negative > counts.positive) {
      t.result = Mode::kNegative;
      t.returned_line = 6;
      return t.result;
    }
  }

  // Lines 7–8: locality filter, then the Auth set of surviving modes.
  const std::vector<WorkingEntry> surviving =
      ApplyLocalityFilter(working, s.locality_rule);
  t.auth_computed = true;
  for (const WorkingEntry& e : surviving) {
    if (e.mode == Mode::kPositive) t.auth_has_positive = true;
    if (e.mode == Mode::kNegative) t.auth_has_negative = true;
  }
  if (t.auth_has_positive != t.auth_has_negative) {
    t.result = t.auth_has_positive ? Mode::kPositive : Mode::kNegative;
    t.returned_line = 8;
    return t.result;
  }

  // Line 9: the preference rule settles everything else — a genuine
  // conflict (both modes survive) or an empty set (no authorization
  // derivable at all).
  t.result = preferred;
  t.returned_line = 9;
  return t.result;
}

StatusOr<acm::Mode> ResolveAccess(const graph::Dag& dag,
                                  const acm::ExplicitAcm& eacm,
                                  graph::NodeId subject, acm::ObjectId object,
                                  acm::RightId right, const Strategy& strategy,
                                  const ResolveAccessOptions& options,
                                  ResolveTrace* trace,
                                  PropagateStats* stats) {
  if (subject >= dag.node_count()) {
    return Status::OutOfRange("subject id " + std::to_string(subject) +
                              " out of range");
  }
  if (object >= eacm.object_count()) {
    return Status::OutOfRange("object id out of range");
  }
  if (right >= eacm.right_count()) {
    return Status::OutOfRange("right id out of range");
  }

  const graph::AncestorSubgraph sub(dag, subject);
  const std::vector<std::optional<acm::Mode>> labels =
      eacm.ExtractLabels(dag.node_count(), object, right);

  PropagateOptions prop_options;
  prop_options.propagation_mode = options.propagation_mode;

  RightsBag all_rights;
  if (options.use_literal_engine) {
    UCR_ASSIGN_OR_RETURN(all_rights,
                         PropagateLiteral(sub, labels, prop_options, stats,
                                          options.literal_max_tuples));
  } else {
    all_rights = PropagateAggregated(sub, labels, prop_options, stats);
  }
  return Resolve(all_rights, strategy, trace);
}

}  // namespace ucr::core
