#ifndef UCR_CORE_BINARY_SNAPSHOT_H_
#define UCR_CORE_BINARY_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "core/system.h"
#include "util/status.h"

namespace ucr::core {

/// \brief Compact binary snapshot of one policy store (DESIGN.md §15):
/// the durable complement of the WAL. A snapshot captures the full
/// state as of an LSN; recovery loads it and replays only WAL records
/// above that LSN.
///
/// On-disk layout (little-endian):
///
///     "UCRSNAP1"            (8-byte magic)
///     u32 version           (currently 1)
///     u64 lsn               (WAL position this state includes)
///     u8  strategy_index    (session strategy, canonical 0..47)
///     u8  propagation_mode
///     u16 reserved          (zero)
///     u64 dag_size | u32 dag_crc      (graph section, AppendDagBinary)
///     u64 acm_size | u32 acm_crc      (matrix section, AppendAcmBinary)
///     u32 header_crc        (CRC of all preceding header bytes)
///     <dag section bytes> <acm section bytes>
///
/// Every section carries its own CRC so a flipped bit anywhere is
/// `kCorruption` before a single byte reaches the deserializers (which
/// re-validate structure anyway — defense in depth, the bytes are
/// untrusted and fuzzed).
///
/// Writes are crash-safe: temp file in the target's directory, fsync,
/// rename over the target, fsync the directory. A crash mid-write
/// leaves the previous snapshot untouched.
struct SnapshotMeta {
  uint64_t lsn = 0;
  uint8_t strategy_index = 0;
  uint8_t propagation_mode = 0;
};

/// Serializes `system`'s durable state (hierarchy + matrix + session
/// strategy) and writes it atomically to `path`. `lsn` stamps the WAL
/// position the snapshot includes.
Status WriteBinarySnapshot(const AccessControlSystem& system, uint64_t lsn,
                           const std::string& path);

/// \brief Loads a binary snapshot, memory-mapping the file read-only so
/// section bytes stream straight from the page cache (a multi-GB
/// hierarchy costs page faults, not an up-front read). Validates magic,
/// version, and all CRCs; any mismatch or short file is a clean
/// `kCorruption`. `options.default_strategy` and `propagation_mode`
/// are overridden by the snapshot's own (they are part of the saved
/// state); every other option is the caller's.
StatusOr<AccessControlSystem> LoadBinarySnapshot(const std::string& path,
                                                 SystemOptions options,
                                                 SnapshotMeta* meta = nullptr);

/// In-memory encode/decode of the same byte layout (header included) —
/// the fuzz harness mutates these bytes without touching disk.
std::string EncodeBinarySnapshot(const AccessControlSystem& system,
                                 uint64_t lsn);
StatusOr<AccessControlSystem> DecodeBinarySnapshot(std::string_view bytes,
                                                   SystemOptions options,
                                                   SnapshotMeta* meta
                                                   = nullptr);

}  // namespace ucr::core

#endif  // UCR_CORE_BINARY_SNAPSHOT_H_
