#ifndef UCR_CORE_SNAPSHOT_H_
#define UCR_CORE_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"
#include "graph/reachability.h"
#include "util/status.h"

namespace ucr::core {

/// \brief Lock-free open-addressed memo of resolved decisions, private
/// to one `HierarchySnapshot` (DESIGN.md §11).
///
/// The snapshot it belongs to is immutable, so entries never go stale
/// and there is no invalidation, no epoch check, and no deletion: the
/// table only fills. Readers race only on *insertion* of entries whose
/// value is deterministic (every thread derives the same decision for
/// a triple under a canonical strategy), so all races are benign —
/// the worst outcome of a lost CAS or a full table is a skipped store,
/// never a wrong answer.
///
/// Layout: each slot is two 64-bit atomics. `key` holds the packed
/// ⟨subject:32 | object:16 | right:16⟩ triple (claimed from the empty
/// sentinel by CAS); `value` holds the canonical strategy index, the
/// decision, and a ready bit, published with release ordering after
/// the key. The strategy lives in the value rather than the key so the
/// common one-strategy-per-deployment case probes distinct strategies
/// to distinct slots via the seed hash; a slot whose strategy does not
/// match is treated as a collision and probing continues.
class EpochResolutionTable {
 public:
  /// `capacity` is rounded up to a power of two; the table stops
  /// accepting stores at ~3/4 load so probes stay short.
  explicit EpochResolutionTable(size_t capacity);

  EpochResolutionTable(const EpochResolutionTable&) = delete;
  EpochResolutionTable& operator=(const EpochResolutionTable&) = delete;

  /// Cached decision for the triple under canonical strategy index
  /// `strategy`, or nullopt. Wait-free: bounded probe sequence, no
  /// stores, no locks.
  std::optional<acm::Mode> Lookup(graph::NodeId subject, acm::ObjectId object,
                                  acm::RightId right, uint8_t strategy) const;

  /// Publishes a derived decision. Returns false when the table is at
  /// load capacity or the probe window is exhausted — a benign skip,
  /// the next snapshot gets a larger table.
  bool TryStore(graph::NodeId subject, acm::ObjectId object,
                acm::RightId right, uint8_t strategy, acm::Mode mode);

  /// Enumerates every ready entry. Safe concurrently with readers
  /// (in-flight, not-yet-ready stores are simply skipped); used by the
  /// writer to carry surviving entries into the next snapshot.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      const uint64_t key = slot.key.load(std::memory_order_acquire);
      if (key == kEmptyKey) continue;
      const uint64_t value = slot.value.load(std::memory_order_acquire);
      if ((value & kReadyBit) == 0) continue;
      fn(static_cast<graph::NodeId>(key >> 32),
         static_cast<acm::ObjectId>((key >> 16) & 0xFFFF),
         static_cast<acm::RightId>(key & 0xFFFF),
         static_cast<uint8_t>(value & 0xFF),
         (value & kPositiveBit) != 0 ? acm::Mode::kPositive
                                     : acm::Mode::kNegative);
    }
  }

  size_t capacity() const { return slots_.size(); }

  /// Entries stored so far (approximate while writers race).
  size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  // No valid triple packs to all-ones: subject 0xFFFFFFFF is
  // graph::kInvalidNode and is rejected before any table access.
  static constexpr uint64_t kEmptyKey = UINT64_MAX;
  static constexpr uint64_t kReadyBit = uint64_t{1} << 63;
  static constexpr uint64_t kPositiveBit = uint64_t{1} << 62;
  static constexpr size_t kMaxProbes = 32;

  struct alignas(16) Slot {
    std::atomic<uint64_t> key{kEmptyKey};
    std::atomic<uint64_t> value{0};
  };

  static uint64_t PackTriple(graph::NodeId s, acm::ObjectId o,
                             acm::RightId r) {
    return (static_cast<uint64_t>(s) << 32) | (static_cast<uint64_t>(o) << 16) |
           static_cast<uint64_t>(r);
  }

  size_t SeedIndex(uint64_t triple, uint8_t strategy) const {
    // Multiplicative hash with the high half folded down: the subject
    // lives in the triple's top 32 bits, and the low bits of a product
    // depend only on the low bits of the key, so without the fold every
    // (object, right) pair would share one probe window across all
    // subjects.
    uint64_t h = triple * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    return (h ^ strategy) & mask_;
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t max_load_ = 0;
  std::atomic<size_t> size_{0};
};

/// \brief Lock-free map subject → extracted `AncestorSubgraph`, private
/// to one `HierarchySnapshot`.
///
/// Open-addressed over subject ids; the value is an atomic pointer to
/// a heap-owned extraction. Concurrent extractors of one subject race
/// on installation: the loser keeps using its own (caller-owned)
/// extraction for the current query and discards it afterwards, so no
/// reader ever blocks on another reader's extraction. The table owns
/// every installed sub-graph and frees them with the snapshot.
class EpochSubgraphTable {
 public:
  explicit EpochSubgraphTable(size_t capacity);
  ~EpochSubgraphTable();

  EpochSubgraphTable(const EpochSubgraphTable&) = delete;
  EpochSubgraphTable& operator=(const EpochSubgraphTable&) = delete;

  /// The cached sub-graph of `subject`, or nullptr. Wait-free.
  const graph::AncestorSubgraph* Find(graph::NodeId subject) const;

  /// \brief Offers a freshly extracted sub-graph and returns the
  /// resident one to use for this query.
  ///
  /// When the install wins, ownership of `sub` moves into the table
  /// (`sub` becomes null) and the installed pointer is returned. When
  /// a racer's extraction is already resident, that one is returned
  /// and `sub` keeps its ownership (the caller's copy is simply used
  /// nowhere). When the table cannot take the entry — full, probe
  /// window exhausted, or the racer's pointer store is still in flight
  /// — `sub.get()` is returned with ownership left in `sub`: correct
  /// either way, the caller just resolves from its own extraction.
  const graph::AncestorSubgraph* Install(
      graph::NodeId subject,
      std::unique_ptr<const graph::AncestorSubgraph>& sub) const;

  /// Enumerates every resident subject (writer-side carry-over).
  template <typename Fn>
  void ForEachSubject(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      const uint64_t key = slot.key.load(std::memory_order_acquire);
      if (key == 0) continue;
      if (slot.sub.load(std::memory_order_acquire) == nullptr) continue;
      fn(static_cast<graph::NodeId>(key - 1));
    }
  }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  // Keys are biased by +1 so the zero-initialized slot means "empty"
  // without colliding with subject id 0.
  struct alignas(16) Slot {
    std::atomic<uint64_t> key{0};
    std::atomic<const graph::AncestorSubgraph*> sub{nullptr};
  };

  static constexpr size_t kMaxProbes = 32;

  size_t SeedIndex(graph::NodeId subject) const {
    return (static_cast<uint64_t>(subject) * 0x9E3779B97F4A7C15ull) & mask_;
  }

  mutable std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t max_load_ = 0;
  mutable std::atomic<size_t> size_{0};
};

/// \brief One immutable, self-contained generation of the whole policy
/// state: hierarchy, explicit matrix, session strategy, propagation
/// mode, and the per-epoch decision/sub-graph tables (DESIGN.md §11).
///
/// Readers holding a pin may touch every member without
/// synchronization: the graph and matrix are private copies that no
/// writer ever mutates, and the tables are lock-free and only fill.
struct HierarchySnapshot {
  HierarchySnapshot(
      uint64_t epoch_in, graph::Dag dag_in, acm::ExplicitAcm eacm_in,
      Strategy strategy, PropagationMode mode, size_t resolution_capacity,
      size_t subgraph_capacity,
      std::shared_ptr<const graph::ReachabilityIndex> reach_index_in = nullptr)
      : epoch(epoch_in),
        dag(std::move(dag_in)),
        eacm(std::move(eacm_in)),
        default_strategy(strategy.Canonical()),
        propagation_mode(mode),
        dag_generation(dag.generation()),
        reach_index(std::move(reach_index_in)),
        resolution(resolution_capacity),
        subgraphs(subgraph_capacity) {}

  const uint64_t epoch;
  const graph::Dag dag;
  const acm::ExplicitAcm eacm;
  const Strategy default_strategy;
  const PropagationMode propagation_mode;
  /// `dag.generation()` at build time: the carry-over filter compares
  /// per-node stamps against this to decide which cached state is
  /// still derivable from the new hierarchy.
  const uint64_t dag_generation;
  /// Reachability/compression index current for exactly this snapshot's
  /// (dag, eacm) generation, shared with the writer that built it
  /// (DESIGN.md §12). Immutable like everything else here, so readers
  /// compose indexed sink bags lock-free. Null when the writer runs
  /// with the index disabled or the build tripped a budget.
  const std::shared_ptr<const graph::ReachabilityIndex> reach_index;

  // Readers insert through const pins; both tables are internally
  // thread-safe and append-only.
  mutable EpochResolutionTable resolution;
  mutable EpochSubgraphTable subgraphs;
};

/// \brief Epoch-based publication and reclamation of
/// `HierarchySnapshot`s (RCU-lite; DESIGN.md §11).
///
/// A single writer publishes successive snapshots; any number of
/// readers pin the current one with two atomic operations and no
/// locks. Snapshots live in a ring of `kEpochSlots` slots indexed by
/// `epoch % kEpochSlots`; publishing epoch E reuses the slot of epoch
/// E - kEpochSlots, first spin-waiting for that epoch's readers to
/// drain — the reclamation rule. Epochs are 64-bit and monotonic, so
/// the pin's re-check can never confuse a recycled slot with the epoch
/// it pinned (no ABA within any realistic process lifetime).
///
/// Thread-safety: `Pin` may be called from any thread; `Publish` must
/// be serialized by the caller (AccessControlSystem holds its write
/// lock across it).
class SnapshotManager {
 public:
  static constexpr size_t kEpochSlots = 4;

  SnapshotManager();
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// RAII pin on one epoch's snapshot. Movable; the snapshot stays
  /// valid until destruction. A default-constructed or moved-from pin
  /// holds nothing.
  class ReadPin {
   public:
    ReadPin() = default;
    ReadPin(ReadPin&& other) noexcept
        : snapshot_(other.snapshot_), readers_(other.readers_) {
      other.snapshot_ = nullptr;
      other.readers_ = nullptr;
    }
    ReadPin& operator=(ReadPin&& other) noexcept {
      if (this != &other) {
        Release();
        snapshot_ = other.snapshot_;
        readers_ = other.readers_;
        other.snapshot_ = nullptr;
        other.readers_ = nullptr;
      }
      return *this;
    }
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;
    ~ReadPin() { Release(); }

    const HierarchySnapshot* get() const { return snapshot_; }
    const HierarchySnapshot& operator*() const { return *snapshot_; }
    const HierarchySnapshot* operator->() const { return snapshot_; }
    explicit operator bool() const { return snapshot_ != nullptr; }

   private:
    friend class SnapshotManager;
    ReadPin(const HierarchySnapshot* snapshot, std::atomic<uint64_t>* readers)
        : snapshot_(snapshot), readers_(readers) {}

    void Release();

    const HierarchySnapshot* snapshot_ = nullptr;
    std::atomic<uint64_t>* readers_ = nullptr;
  };

  /// Pins the current snapshot. Lock-free: one fetch_add plus an
  /// epoch re-check, retried only if a publication raced in between.
  /// Returns an empty pin before the first Publish.
  ReadPin Pin() const;

  /// Publishes `next` as the new current snapshot; its `epoch` must be
  /// `current_epoch() + 1`. Blocks (spin + yield) only when the ring
  /// wraps onto an epoch that still has pinned readers.
  void Publish(std::unique_ptr<const HierarchySnapshot> next);

  /// Epoch of the currently published snapshot (0 = none yet).
  uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

  /// Pins currently held across all retained epochs.
  uint64_t active_readers() const;

  uint64_t published_total() const {
    return published_total_.load(std::memory_order_relaxed);
  }
  uint64_t retired_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> readers{0};
    std::atomic<const HierarchySnapshot*> snapshot{nullptr};
  };

  // seq_cst on the epoch counter and reader counts: the pin's
  // increment → re-check pair and the writer's epoch-store → drain-
  // load pair must appear in one total order, which is what rules out
  // a reader pinning a slot the writer already believes drained (see
  // Pin() for the interleaving argument).
  std::atomic<uint64_t> current_epoch_{0};
  mutable std::array<Slot, kEpochSlots> slots_;
  std::atomic<uint64_t> published_total_{0};
  std::atomic<uint64_t> retired_total_{0};
};

/// Per-query knobs for `SnapshotResolveAccess`.
struct SnapshotReadOptions {
  /// Consult/fill the snapshot's resolution table. Ignored (treated as
  /// false) when a trace or stats out-param is supplied: a memoized
  /// decision has no derivation to report, and the differential suite
  /// compares derivations.
  bool use_resolution_table = true;

  /// Consult/fill the snapshot's sub-graph table. Off forces a scratch
  /// extraction per query (the PR 2 hot path's behavior).
  bool use_subgraph_table = true;

  /// Compose the sink bag from the snapshot's reachability index
  /// (when it carries one) instead of extracting the ancestor
  /// sub-graph (DESIGN.md §12). Automatically bypassed when `stats`
  /// are requested or the mode is `kSecondWins`; decisions and traces
  /// stay bit-identical either way.
  bool use_reachability_index = true;
};

/// \brief End-to-end conflict resolution against one pinned snapshot:
/// the lock-free serving path (DESIGN.md §11).
///
/// Bit-identical decisions, traces, and stats to `ResolveAccess` on
/// the same hierarchy/matrix state (the epoch differential suite
/// asserts this for all 48 strategies). Steady state acquires no locks
/// and performs no heap allocations: table hits are two atomic loads,
/// misses run the PR 2 hot path and publish the result with one CAS.
StatusOr<acm::Mode> SnapshotResolveAccess(const HierarchySnapshot& snapshot,
                                          graph::NodeId subject,
                                          acm::ObjectId object,
                                          acm::RightId right,
                                          const Strategy& strategy,
                                          const SnapshotReadOptions& options = {},
                                          ResolveTrace* trace = nullptr,
                                          PropagateStats* stats = nullptr);

/// What `BuildSnapshot` carried over from the previous generation
/// (observability; also exported as `ucr_epoch_carryover_*` counters).
struct SnapshotBuildStats {
  size_t resolution_carried = 0;   ///< Decisions still derivable.
  size_t resolution_dropped = 0;   ///< Decisions invalidated by the delta.
  size_t subgraphs_carried = 0;    ///< Sub-graphs re-extracted while warm.
  size_t subgraphs_dropped = 0;    ///< Sub-graphs whose ancestor set changed.
};

/// \brief Builds the next `HierarchySnapshot` from the writer's master
/// state, warming its tables from `previous` (may be null).
///
/// A resolved decision survives iff (a) the subject's ancestor set is
/// unchanged — `dag.node_generation(subject) <= previous->dag_generation`,
/// exactly the stamp the in-place mutators maintain — and (b) its
/// (object, right) column epoch is unchanged between the two matrices.
/// A cached sub-graph survives under (a) alone and is re-extracted
/// against the new snapshot's own graph (sub-graphs hold a back
/// pointer into the graph they were cut from, so they never migrate
/// across snapshots).
std::unique_ptr<const HierarchySnapshot> BuildSnapshot(
    const graph::Dag& dag, const acm::ExplicitAcm& eacm,
    const Strategy& default_strategy, PropagationMode propagation_mode,
    uint64_t epoch, const HierarchySnapshot* previous,
    size_t resolution_capacity,
    std::shared_ptr<const graph::ReachabilityIndex> reach_index = nullptr,
    SnapshotBuildStats* stats = nullptr);

}  // namespace ucr::core

#endif  // UCR_CORE_SNAPSHOT_H_
