#include "core/batch_resolver.h"

#include <optional>

#include "core/flat_propagate.h"
#include "core/resolve.h"
#include "core/rights_bag.h"
#include "graph/ancestor_subgraph.h"
#include "graph/scratch_subgraph.h"

namespace ucr::core {

namespace {
size_t PoolWorkers(size_t threads) { return threads <= 1 ? 0 : threads - 1; }

BatchResolverOptions Clamped(BatchResolverOptions options) {
  options.threads = ThreadPool::ClampToHardware(options.threads);
  return options;
}
}  // namespace

BatchResolver::BatchResolver(const graph::Dag& dag,
                             const acm::ExplicitAcm& eacm,
                             BatchResolverOptions options)
    : dag_(&dag),
      eacm_(&eacm),
      options_(Clamped(options)),
      pool_(PoolWorkers(options_.threads)) {}

BatchResolver::BatchResolver(const AccessControlSystem& system, size_t threads)
    : BatchResolver(system.dag(), system.eacm(), [&] {
        BatchResolverOptions options;
        options.threads = threads;
        options.propagation_mode = system.propagation_mode();
        return options;
      }()) {}

acm::Mode BatchResolver::ResolveOne(const Query& query,
                                    const Strategy& canonical) {
  // Mirrors AccessControlSystem::CheckAccess step for step; decisions
  // are deterministic, so sharing them across threads is sound.
  const uint64_t column_epoch = eacm_->ColumnEpoch(query.object, query.right);
  if (options_.enable_resolution_cache) {
    const std::optional<acm::Mode> cached =
        resolution_cache_.Lookup(query.subject, query.object, query.right,
                                 canonical, column_epoch);
    if (cached.has_value()) return *cached;
  }

  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;

  acm::Mode mode;
  if (options_.use_fast_path) {
    // Allocation-free hot path (DESIGN.md §7). With the sub-graph
    // cache on, the flat kernel propagates over the shared cached
    // sub-graph; without it, over an ephemeral scratch-arena view.
    HotPath& hot = HotPath::ThreadLocal();
    hot.propagator.SetLabels(eacm_->Column(query.object, query.right),
                             dag_->node_count());
    std::span<const RightsEntry> sink_bag;
    if (options_.enable_subgraph_cache) {
      sink_bag = hot.propagator.PropagateSink(
          subgraph_cache_.Get(*dag_, query.subject), prop_options);
    } else {
      const graph::ScratchSubgraphView view =
          hot.scratch.Extract(*dag_, query.subject);
      sink_bag = hot.propagator.PropagateSink(view, prop_options);
    }
    mode = ResolveEntries(sink_bag, canonical);
  } else {
    const std::vector<std::optional<acm::Mode>> labels =
        eacm_->ExtractLabels(dag_->node_count(), query.object, query.right);
    RightsBag all_rights;
    if (options_.enable_subgraph_cache) {
      all_rights = PropagateAggregated(
          subgraph_cache_.Get(*dag_, query.subject), labels, prop_options);
    } else {
      const graph::AncestorSubgraph sub(*dag_, query.subject);
      all_rights = PropagateAggregated(sub, labels, prop_options);
    }
    mode = Resolve(all_rights, canonical);
  }
  if (options_.enable_resolution_cache) {
    resolution_cache_.Store(query.subject, query.object, query.right,
                            canonical, column_epoch, mode);
  }
  return mode;
}

StatusOr<std::vector<acm::Mode>> BatchResolver::ResolveBatch(
    std::span<const Query> queries, const Strategy& strategy) {
  for (const Query& q : queries) {
    if (q.subject >= dag_->node_count() ||
        q.object >= eacm_->object_count() ||
        q.right >= eacm_->right_count()) {
      return Status::OutOfRange("batch query references unknown ids");
    }
  }
  const Strategy canonical = strategy.Canonical();
  std::vector<acm::Mode> results(queries.size(), acm::Mode::kNegative);
  pool_.ParallelFor(0, queries.size(), [&](size_t i) {
    results[i] = ResolveOne(queries[i], canonical);
  });
  return results;
}

}  // namespace ucr::core
