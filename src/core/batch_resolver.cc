#include "core/batch_resolver.h"

#include <optional>

#include "core/flat_propagate.h"
#include "core/resolve.h"
#include "core/rights_bag.h"
#include "graph/ancestor_subgraph.h"
#include "graph/scratch_subgraph.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/shadow.h"
#include "obs/trace.h"

namespace ucr::core {

namespace {
size_t PoolWorkers(size_t threads) { return threads <= 1 ? 0 : threads - 1; }

BatchResolverOptions Clamped(BatchResolverOptions options) {
  options.threads = ThreadPool::ClampToHardware(options.threads);
  return options;
}

/// Serving-path telemetry (DESIGN.md §8): per-query counters/latency
/// for the batch engine, distinct from the uncached ResolveAccess
/// family so dashboards can separate cold derivations from served
/// traffic. Lock-free, allocation-free recording.
struct BatchMetrics {
  obs::Counter& queries = obs::Registry::Global().GetCounter(
      "ucr_batch_queries_total", "Queries answered by BatchResolver");
  obs::Counter& batches = obs::Registry::Global().GetCounter(
      "ucr_batch_batches_total", "ResolveBatch invocations");
  obs::Histogram& latency = obs::Registry::Global().GetHistogram(
      "ucr_batch_query_latency_ns",
      "Per-query latency inside ResolveBatch, cache hits included (ns)");
};

BatchMetrics& GetBatchMetrics() {
  static BatchMetrics* metrics = new BatchMetrics();
  return *metrics;
}

/// Trace record for a batch query: identical Fig. 4 payload to the
/// ResolveAccess tracer, plus the cache interactions. A resolution
/// cache hit records no stage spans and no Fig. 4 derivation of its
/// own (the derivation happened when the entry was stored).
[[gnu::noinline, gnu::cold]] void RecordBatchTrace(const BatchResolver::Query& query,
                      const Strategy& canonical, bool fast_path,
                      bool resolution_hit, bool subgraph_hit,
                      uint64_t t_start, uint64_t t_propagate, uint64_t t_end,
                      const ResolveTrace* trace, acm::Mode mode,
                      const obs::PhaseBreakdown& phases) {
  obs::QueryTraceRecord record;
  record.subject = query.subject;
  record.object = query.object;
  record.right = query.right;
  record.strategy_index = canonical.CanonicalIndex();
  record.fast_path = fast_path;
  record.resolution_cache_hit = resolution_hit;
  record.subgraph_cache_hit = subgraph_hit;
  if (!resolution_hit) {
    // Extraction and propagation are fused in the batch engine (the
    // flat kernel pulls from the sub-graph cache internally), so the
    // pipeline splits into propagate (Steps 1-3) and resolve (Step 4).
    record.propagate_ns = t_propagate - t_start;
    record.resolve_ns = t_end - t_propagate;
  }
  record.total_ns = t_end - t_start;
  record.phases = phases;
  if (trace != nullptr) {
    record.has_majority = trace->c1.has_value();
    record.c1 = trace->c1.value_or(0);
    record.c2 = trace->c2.value_or(0);
    record.auth_computed = trace->auth_computed;
    record.auth_has_positive = trace->auth_has_positive;
    record.auth_has_negative = trace->auth_has_negative;
    record.returned_line = trace->returned_line;
  }
  record.granted = mode == acm::Mode::kPositive;
  const uint64_t sequence = obs::QueryTracer::Global().Record(record);
  // Exemplar: link this sample's tail-latency bucket to its trace so
  // /tracez can recover the full Fig. 4 derivation.
  GetBatchMetrics().latency.RecordExemplar(record.total_ns, sequence,
                                           query.subject, query.object,
                                           query.right);
}
}  // namespace

BatchResolver::BatchResolver(const graph::Dag& dag,
                             const acm::ExplicitAcm& eacm,
                             BatchResolverOptions options)
    : dag_(&dag),
      eacm_(&eacm),
      options_(Clamped(options)),
      pool_(PoolWorkers(options_.threads)) {}

BatchResolver::BatchResolver(const AccessControlSystem& system, size_t threads)
    : BatchResolver(system.dag(), system.eacm(), [&] {
        BatchResolverOptions options;
        options.threads = threads;
        options.propagation_mode = system.propagation_mode();
        return options;
      }()) {}

BatchResolver::BatchResolver(const HierarchySnapshot& snapshot,
                             BatchResolverOptions options)
    : BatchResolver(snapshot.dag, snapshot.eacm, [&] {
        // The snapshot's mode wins: its carried decisions and cached
        // sub-graphs were derived under it, and mixing modes within
        // one epoch would silently change semantics.
        options.propagation_mode = snapshot.propagation_mode;
        return options;
      }()) {}

acm::Mode BatchResolver::ResolveOne(const Query& query,
                                    const Strategy& canonical) {
  // Per-query telemetry mirrors ResolveAccess: unsampled queries pay
  // one countdown and one counter increment; clock reads, the latency
  // histogram, and the Fig. 4 trace fire only for sampled queries.
  const bool sampled = obs::QueryTracer::ShouldSample();
  const uint64_t t_start = sampled ? obs::NowNs() : 0;
  // Phase-attribution owner scope (DESIGN.md §14).
  obs::ScopedPhaseCollection phase_scope(sampled);

  // Mirrors AccessControlSystem::CheckAccess step for step; decisions
  // are deterministic, so sharing them across threads is sound.
  const uint64_t column_epoch = eacm_->ColumnEpoch(query.object, query.right);
  if (options_.enable_resolution_cache) {
    const std::optional<acm::Mode> cached =
        resolution_cache_.Lookup(query.subject, query.object, query.right,
                                 canonical, column_epoch);
    if (cached.has_value()) {
      if constexpr (obs::kEnabled) {
        GetBatchMetrics().queries.Inc();
        if (sampled) [[unlikely]] {
          const uint64_t t_end = obs::NowNs();
          GetBatchMetrics().latency.Observe(t_end - t_start);
          RecordBatchTrace(query, canonical, options_.use_fast_path,
                           /*resolution_hit=*/true, /*subgraph_hit=*/false,
                           t_start, t_start, t_end, nullptr, *cached,
                           phase_scope.Snapshot());
        }
      }
      return *cached;
    }
  }

  PropagateOptions prop_options;
  prop_options.propagation_mode = options_.propagation_mode;

  acm::Mode mode;
  bool subgraph_hit = false;
  uint64_t t_propagate = 0;
  // Shadow verification (DESIGN.md §9) only covers the fast engine —
  // re-resolving the classic engine with itself proves nothing — and
  // needs the Fig. 4 trace for the bit-for-bit comparison.
  const bool shadowed =
      options_.use_fast_path && obs::ShadowVerifier::ShouldShadow();
  ResolveTrace sampled_trace;
  ResolveTrace* trace_out =
      sampled || shadowed ? &sampled_trace : nullptr;
  if (options_.use_fast_path) {
    // Allocation-free hot path (DESIGN.md §7). With the sub-graph
    // cache on, the flat kernel propagates over the shared cached
    // sub-graph; without it, over an ephemeral scratch-arena view.
    HotPath& hot = HotPath::ThreadLocal();
    hot.propagator.SetLabels(eacm_->Column(query.object, query.right),
                             dag_->node_count());
    std::span<const RightsEntry> sink_bag;
    if (options_.enable_subgraph_cache) {
      sink_bag = hot.propagator.PropagateSink(
          subgraph_cache_.Get(*dag_, query.subject, &subgraph_hit),
          prop_options);
    } else {
      const graph::ScratchSubgraphView view =
          hot.scratch.Extract(*dag_, query.subject);
      sink_bag = hot.propagator.PropagateSink(view, prop_options);
    }
    t_propagate = sampled ? obs::NowNs() : 0;
    mode = ResolveEntries(sink_bag, canonical, trace_out);
  } else {
    const std::vector<std::optional<acm::Mode>> labels =
        eacm_->ExtractLabels(dag_->node_count(), query.object, query.right);
    RightsBag all_rights;
    if (options_.enable_subgraph_cache) {
      all_rights = PropagateAggregated(
          subgraph_cache_.Get(*dag_, query.subject, &subgraph_hit), labels,
          prop_options);
    } else {
      const graph::AncestorSubgraph sub(*dag_, query.subject);
      all_rights = PropagateAggregated(sub, labels, prop_options);
    }
    t_propagate = sampled ? obs::NowNs() : 0;
    mode = Resolve(all_rights, canonical, trace_out);
  }
  if (options_.enable_resolution_cache) {
    resolution_cache_.Store(query.subject, query.object, query.right,
                            canonical, column_epoch, mode);
  }
  if constexpr (obs::kEnabled) {
    GetBatchMetrics().queries.Inc();
    if (sampled) [[unlikely]] {
      const uint64_t t_end = obs::NowNs();
      GetBatchMetrics().latency.Observe(t_end - t_start);
      RecordBatchTrace(query, canonical, options_.use_fast_path,
                       /*resolution_hit=*/false, subgraph_hit, t_start,
                       t_propagate, t_end, trace_out, mode,
                       phase_scope.Snapshot());
    }
    if (shadowed) [[unlikely]] {
      ShadowVerifyDecision(*dag_, *eacm_, query.subject, query.object,
                           query.right, canonical, prop_options, mode,
                           *trace_out);
    }
  }
  return mode;
}

StatusOr<std::vector<acm::Mode>> BatchResolver::ResolveBatch(
    std::span<const Query> queries, const Strategy& strategy) {
  // Batch-assembly phase (DESIGN.md §14): validation, canonicalization,
  // and the result-vector setup are the per-batch overhead that no
  // per-query phase sees. Sampled per batch and observed directly —
  // a per-query collection spanning ParallelFor would force clock
  // stamps onto every inline query.
  const bool sampled = obs::QueryTracer::ShouldSample();
  const uint64_t t_assemble = sampled ? obs::NowNs() : 0;
  for (const Query& q : queries) {
    if (q.subject >= dag_->node_count() ||
        q.object >= eacm_->object_count() ||
        q.right >= eacm_->right_count()) {
      return Status::OutOfRange("batch query references unknown ids");
    }
  }
  const Strategy canonical = strategy.Canonical();
  if constexpr (obs::kEnabled) GetBatchMetrics().batches.Inc();
  std::vector<acm::Mode> results(queries.size(), acm::Mode::kNegative);
  if constexpr (obs::kEnabled) {
    if (sampled) [[unlikely]] {
      static obs::Histogram& assemble_hist =
          obs::Registry::Global().GetHistogram(
              obs::PhaseMetricName(obs::Phase::kBatchAssemble),
              "Per-batch time in batch validation/assembly (ns, sampled)");
      assemble_hist.Observe(obs::NowNs() - t_assemble);
    }
  }
  pool_.ParallelFor(0, queries.size(), [&](size_t i) {
    results[i] = ResolveOne(queries[i], canonical);
  });
  return results;
}

size_t BatchResolver::InvalidateSubjects(
    std::span<const graph::NodeId> affected) {
  std::vector<uint8_t> bitmap(dag_->node_count(), 0);
  for (graph::NodeId v : affected) {
    if (v < bitmap.size()) bitmap[v] = 1;
  }
  size_t dropped = 0;
  dropped += resolution_cache_.EraseSubjects(bitmap);
  dropped += subgraph_cache_.EraseSubjects(bitmap);
  return dropped;
}

}  // namespace ucr::core
