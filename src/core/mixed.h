#ifndef UCR_CORE_MIXED_H_
#define UCR_CORE_MIXED_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/resolve.h"
#include "graph/ancestor_subgraph.h"
#include "core/rights_bag.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// \file
/// Mixed subject *and* object hierarchies — the paper's future-work
/// item #2 (§6): "It is important to support mixed hierarchy of
/// subjects and objects."
///
/// Objects, like subjects, form a DAG: an edge `container -> item`
/// means authorizations on the container apply to the item (a folder
/// to its documents, a table to its columns). An explicit
/// authorization on ⟨group, folder⟩ then reaches ⟨user, document⟩
/// along every *pair* of paths — one in each hierarchy — and its
/// distance is the sum of the two path lengths, so "most specific"
/// and "most general" rank joint specificity. All four conflict
/// resolution policies and the 48 strategy instances apply unchanged
/// to the combined `allRights` bag; `Resolve()` is reused as is.
///
/// Model decisions (the paper sketches no semantics; each is chosen
/// to degenerate exactly to the subject-only model):
///  * A tuple's distance is `subject_dis + object_dis`; multiplicity
///    is (#subject paths of that length) x (#object paths of that
///    length) — per-(path, path) bag semantics, the 2-D analogue of
///    the paper's per-path counting. With a single-node object
///    hierarchy this is literally the paper's model (a tested
///    property).
///  * The Step-2 default marker 'd' attaches to ⟨subject-root,
///    object-root⟩ pairs carrying no explicit authorization: a pair
///    is "unlabeled at the top" only if both coordinates are roots.
///    With a single-node object DAG this reduces to "unlabeled root
///    subjects", the paper's rule.
///  * Rights do not form a hierarchy (the paper never proposes one).

/// An explicit authorization on a (subject, object) pair for `right`.
/// `MixedResolveAccess` takes these instead of an `ExplicitAcm` view
/// because both coordinates now live in graphs.
struct MixedAuthorization {
  graph::NodeId subject = 0;  ///< Node in the subject hierarchy.
  graph::NodeId object = 0;   ///< Node in the object hierarchy.
  acm::Mode mode = acm::Mode::kPositive;
};

/// Work counters for mixed propagation.
struct MixedPropagateStats {
  uint64_t profile_entries = 0;  ///< Distance-profile cells computed.
  uint64_t pair_tuples = 0;      ///< (dis, mode) groups emitted.
};

/// \brief Propagates mixed authorizations to the pair
/// ⟨`subject`, `object`⟩ and returns the combined allRights bag.
///
/// Cost: one distance-profile DP over the subject ancestor sub-graph
/// per distinct labeled subject (and likewise on the object side),
/// plus a profile convolution per explicit authorization — polynomial
/// throughout, using the same multiplicity aggregation as
/// `PropagateAggregated`.
StatusOr<RightsBag> MixedPropagate(
    const graph::Dag& subject_dag, const graph::Dag& object_dag,
    const std::vector<MixedAuthorization>& authorizations,
    graph::NodeId subject, graph::NodeId object,
    MixedPropagateStats* stats = nullptr);

/// \brief End-to-end mixed-hierarchy conflict resolution: propagate
/// through both hierarchies, then apply the unchanged Resolve().
StatusOr<acm::Mode> MixedResolveAccess(
    const graph::Dag& subject_dag, const graph::Dag& object_dag,
    const std::vector<MixedAuthorization>& authorizations,
    graph::NodeId subject, graph::NodeId object, const Strategy& strategy,
    ResolveTrace* trace = nullptr);

/// \brief Distance profile of one source toward one sink: for each
/// path length L, the number of directed paths of exactly length L.
/// Exposed for tests and for callers that want to cache profiles.
///
/// `profile[L]` = number of paths of length L from `source` to `sink`
/// (saturating). Empty when `source` does not reach `sink`;
/// `{(0 -> 1)}` when source == sink.
std::vector<uint64_t> DistanceProfile(const graph::Dag& dag,
                                      graph::NodeId source,
                                      graph::NodeId sink);

/// All members' distance profiles toward `sub`'s sink in one pass:
/// `result[v][L]` = number of length-L paths from local member `v` to
/// the sink. Shared by the mixed-hierarchy and explanation engines.
std::vector<std::vector<uint64_t>> AllDistanceProfiles(
    const graph::AncestorSubgraph& sub);

}  // namespace ucr::core

#endif  // UCR_CORE_MIXED_H_
