#ifndef UCR_CORE_SYSTEM_H_
#define UCR_CORE_SYSTEM_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/cache.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// Options for `AccessControlSystem`.
struct SystemOptions {
  /// Memoize resolved decisions (invalidated on any explicit-matrix
  /// change). The paper's future-work #1.
  bool enable_resolution_cache = true;

  /// Cache extracted ancestor sub-graphs. Hierarchy edits drop the
  /// affected subjects' entries (DESIGN.md §10), so cached sub-graphs
  /// are never stale.
  bool enable_subgraph_cache = true;

  /// Strategy used when a query does not name one. Reconfiguring this
  /// at run time is the paper's headline capability: switching the
  /// enterprise's conflict-resolution strategy without reinstalling
  /// anything.
  Strategy default_strategy;  // Zero-initialized: P- (closed preference).

  /// Propagation extension mode (paper future-work #3) applied by all
  /// of this system's queries and materializations.
  PropagationMode propagation_mode = PropagationMode::kBoth;

  /// Scope hierarchy-edit cache invalidation to the affected subjects
  /// (descendants of the edited child) instead of clearing both caches
  /// wholesale (DESIGN.md §10). Off reproduces the full-clear write
  /// path, kept as the baseline for bench/mutation_churn.
  bool incremental_hierarchy_updates = true;
};

/// \brief The user-facing facade: a subject hierarchy plus an explicit
/// access control matrix, answering effective-authorization queries
/// under any of the 48 conflict-resolution strategies.
///
/// Typical use:
///
///     auto system = AccessControlSystem::Create(std::move(dag));
///     system->SetStrategy(ParseStrategy("D+LP-").value());
///     system->Grant("payroll", "salary.xls", "read");
///     system->DenyAccess("interns", "salary.xls", "read");
///     bool ok = system->CheckAccessByName("alice", "salary.xls", "read");
///
/// Not thread-safe for concurrent mutation; concurrent read-only
/// queries are safe once mutation stops *and* caches are disabled (the
/// caches are not synchronized).
class AccessControlSystem {
 public:
  /// Takes ownership of the hierarchy.
  explicit AccessControlSystem(graph::Dag dag, SystemOptions options = {});

  // Move-only: the caches reference internal state, and two live
  // copies of one policy store invite divergence bugs.
  AccessControlSystem(const AccessControlSystem&) = delete;
  AccessControlSystem& operator=(const AccessControlSystem&) = delete;
  AccessControlSystem(AccessControlSystem&&) = default;
  AccessControlSystem& operator=(AccessControlSystem&&) = default;

  const graph::Dag& dag() const { return dag_; }
  const acm::ExplicitAcm& eacm() const { return eacm_; }

  /// The propagation extension mode every query of this system applies
  /// (read by external engines — EffectiveMatrix, BatchResolver — so
  /// their derivations match this system's own decisions exactly).
  PropagationMode propagation_mode() const {
    return options_.propagation_mode;
  }

  /// The strategy used by queries that do not name one.
  const Strategy& strategy() const { return options_.default_strategy; }

  /// Reconfigures the session strategy. Cached decisions keyed under
  /// other strategies stay valid (the strategy is part of the key).
  /// Audit-logged: a strategy change flips every decision the old
  /// strategy and the new one disagree on, so the trail must show it.
  void SetStrategy(const Strategy& strategy);

  /// Grants `right` on `object` to `subject` explicitly.
  /// All three names are created/interned on first use except the
  /// subject, which must exist in the hierarchy.
  Status Grant(std::string_view subject, std::string_view object,
               std::string_view right);

  /// Denies `right` on `object` to `subject` explicitly.
  Status DenyAccess(std::string_view subject, std::string_view object,
                    std::string_view right);

  /// Removes any explicit authorization for the triple.
  Status Revoke(std::string_view subject, std::string_view object,
                std::string_view right);

  /// Effective decision for a triple under the session strategy.
  StatusOr<acm::Mode> CheckAccessByName(std::string_view subject,
                                        std::string_view object,
                                        std::string_view right);

  /// Effective decision under an explicit strategy.
  StatusOr<acm::Mode> CheckAccessByName(std::string_view subject,
                                        std::string_view object,
                                        std::string_view right,
                                        const Strategy& strategy);

  /// Id-based query (fast path).
  StatusOr<acm::Mode> CheckAccess(graph::NodeId subject, acm::ObjectId object,
                                  acm::RightId right,
                                  const Strategy& strategy);

  /// \brief Adds a membership edge `parent -> child` to the hierarchy
  /// at run time (new hires, reorganizations). Both subjects may be
  /// new (created on first mention). Fails if the edge would create a
  /// cycle or already exists; on failure the hierarchy is unchanged.
  ///
  /// The edit is applied in place (no hierarchy rebuild) and cache
  /// invalidation is scoped to the *affected set* — the edited child
  /// and its descendants in the membership direction, the only
  /// subjects whose ancestor sub-graphs the edit can change. Cached
  /// state for every other subject survives (DESIGN.md §10). When
  /// `affected` is non-null it receives the affected node ids, e.g.
  /// to forward to `BatchResolver::InvalidateSubjects`.
  Status AddMembership(std::string_view parent, std::string_view child,
                       std::vector<graph::NodeId>* affected = nullptr);

  /// Removes a membership edge. Fails if absent. Invalidation is
  /// scoped exactly like AddMembership. Subjects are never removed —
  /// a node that loses its last membership becomes a root.
  Status RemoveMembership(std::string_view parent, std::string_view child,
                          std::vector<graph::NodeId>* affected = nullptr);

  /// One operation of a mutation batch (ApplyMutations).
  struct MutationOp {
    enum class Kind : uint8_t {
      kGrant = 0,
      kDeny,
      kRevoke,
      kAddMembership,
      kRemoveMembership,
    };
    Kind kind = Kind::kGrant;
    /// Subject (rights ops) or parent group (membership ops).
    std::string subject;
    /// Object (rights ops) or child subject (membership ops).
    std::string object;
    /// Right name; ignored by membership ops.
    std::string right;

    static MutationOp Grant(std::string subject, std::string object,
                            std::string right) {
      return {Kind::kGrant, std::move(subject), std::move(object),
              std::move(right)};
    }
    static MutationOp Deny(std::string subject, std::string object,
                           std::string right) {
      return {Kind::kDeny, std::move(subject), std::move(object),
              std::move(right)};
    }
    static MutationOp Revoke(std::string subject, std::string object,
                             std::string right) {
      return {Kind::kRevoke, std::move(subject), std::move(object),
              std::move(right)};
    }
    static MutationOp AddMember(std::string parent, std::string child) {
      return {Kind::kAddMembership, std::move(parent), std::move(child), {}};
    }
    static MutationOp RemoveMember(std::string parent, std::string child) {
      return {Kind::kRemoveMembership, std::move(parent), std::move(child),
              {}};
    }
  };

  /// What a mutation batch did, for observability and for forwarding
  /// the coalesced affected set to external caches.
  struct MutationBatchStats {
    size_t applied = 0;              ///< Ops executed successfully.
    size_t invalidated_entries = 0;  ///< Cache entries dropped.
    /// Union of the per-edit affected sets, ascending by node id.
    std::vector<graph::NodeId> affected;
  };

  /// \brief Applies a batch of mutations in order, coalescing the
  /// hierarchy edits' affected sets into a single scoped invalidation
  /// sweep at the end — a reorg touching one subtree N times pays one
  /// sweep, not N.
  ///
  /// Rights edits (grant/deny/revoke) are column-scoped by the EACM
  /// epochs and need no sweep. Stops at the first failing op (prior
  /// ops stay applied — each op is individually atomic and the sweep
  /// still covers them); no query may run between the failing batch
  /// and the returned status being handled.
  Status ApplyMutations(std::span<const MutationOp> ops,
                        MutationBatchStats* stats = nullptr);

  /// One access query of a batch.
  struct AccessQuery {
    graph::NodeId subject = 0;
    acm::ObjectId object = 0;
    acm::RightId right = 0;
  };

  /// \brief Resolves a batch of queries under one strategy, optionally
  /// on several threads. Results align positionally with `queries`.
  ///
  /// The hierarchy and the explicit matrix are immutable during the
  /// call, so multi-threaded execution is safe; it bypasses the
  /// (unsynchronized) caches and resolves each query from scratch,
  /// which still wins once the batch is large. `threads` = 0 or 1 runs
  /// inline and uses the caches.
  StatusOr<std::vector<acm::Mode>> CheckAccessBatch(
      std::span<const AccessQuery> queries, const Strategy& strategy,
      size_t threads = 1);

  /// Decisions for one triple under all 48 canonical strategies, in
  /// `AllStrategies()` order. Demonstrates the parametric algorithm:
  /// one propagation, 48 resolutions.
  StatusOr<std::vector<acm::Mode>> CheckAccessAllStrategies(
      graph::NodeId subject, acm::ObjectId object, acm::RightId right);

  /// \brief One column of the *effective* access control matrix: the
  /// derived mode of every subject for (object, right) under
  /// `strategy`, indexed by node id. Computed with the whole-graph
  /// propagation engine in one topological pass.
  StatusOr<std::vector<acm::Mode>> MaterializeEffectiveColumn(
      acm::ObjectId object, acm::RightId right, const Strategy& strategy);

  /// Cache observability.
  const ResolutionCache& resolution_cache() const { return resolution_cache_; }
  const SubgraphCache& subgraph_cache() const { return subgraph_cache_; }

 private:
  Status SetMode(std::string_view subject, std::string_view object,
                 std::string_view right, acm::Mode mode);

  /// Applies one membership edit in place (`add` selects insert vs
  /// erase), appends the affected node ids to `affected`, and emits
  /// the audit event. Does NOT invalidate caches — callers scope one
  /// sweep over the (possibly coalesced) affected set.
  Status MutateMembership(bool add, std::string_view parent,
                          std::string_view child,
                          std::vector<graph::NodeId>* affected);

  /// One reachability-scoped invalidation sweep over `affected` (or a
  /// full clear with incremental updates disabled). Returns the number
  /// of cache entries dropped.
  size_t InvalidateAffected(const std::vector<graph::NodeId>& affected);

  graph::Dag dag_;
  acm::ExplicitAcm eacm_;
  SystemOptions options_;
  ResolutionCache resolution_cache_;
  SubgraphCache subgraph_cache_;
};

}  // namespace ucr::core

#endif  // UCR_CORE_SYSTEM_H_
