#ifndef UCR_CORE_SYSTEM_H_
#define UCR_CORE_SYSTEM_H_

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/cache.h"
#include "core/resolve.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "graph/reachability.h"
#include "util/status.h"

namespace ucr::core {

/// \brief How the mutators treat a grant/deny whose triple already
/// holds the *opposite* explicit mode.
///
/// The paper's §3.3 disallows contradicting explicit authorizations,
/// so the matrix itself always rejects them; this policy decides what
/// an administrative grant/deny *operation* does when it runs into one.
enum class GrantConflictPolicy : uint8_t {
  /// Fail the operation with FailedPrecondition naming the conflict;
  /// the matrix is unchanged. The caller revokes first or switches the
  /// policy. Default: silent permission flips should be deliberate.
  kReject = 0,
  /// Replace the opposing entry in place (last-writer-wins), exactly
  /// as an explicit revoke-then-set would, in one epoch bump.
  kOverwrite,
};

/// Options for `AccessControlSystem`.
struct SystemOptions {
  /// Memoize resolved decisions (invalidated on any explicit-matrix
  /// change). The paper's future-work #1.
  bool enable_resolution_cache = true;

  /// Cache extracted ancestor sub-graphs. Hierarchy edits drop the
  /// affected subjects' entries (DESIGN.md §10), so cached sub-graphs
  /// are never stale.
  bool enable_subgraph_cache = true;

  /// Strategy used when a query does not name one. Reconfiguring this
  /// at run time is the paper's headline capability: switching the
  /// enterprise's conflict-resolution strategy without reinstalling
  /// anything.
  Strategy default_strategy;  // Zero-initialized: P- (closed preference).

  /// Propagation extension mode (paper future-work #3) applied by all
  /// of this system's queries and materializations.
  PropagationMode propagation_mode = PropagationMode::kBoth;

  /// Scope hierarchy-edit cache invalidation to the affected subjects
  /// (descendants of the edited child) instead of clearing both caches
  /// wholesale (DESIGN.md §10). Off reproduces the full-clear write
  /// path, kept as the baseline for bench/mutation_churn.
  bool incremental_hierarchy_updates = true;

  /// Publish epoch-pinned snapshots of the whole policy state so
  /// queries can run on `CheckAccessSnapshot` completely lock-free
  /// while mutators proceed concurrently (DESIGN.md §11). Every
  /// successful mutator (or mutation batch) then builds and publishes
  /// the next snapshot under the internal write lock. Equivalent to
  /// calling `EnableSnapshotReads()` after construction.
  bool enable_snapshot_reads = false;

  /// Behavior of `Grant`/`DenyAccess` (and batch grant/deny ops) when
  /// the triple already holds the opposite explicit mode.
  GrantConflictPolicy mutation_conflict_policy = GrantConflictPolicy::kReject;

  /// Maintain the reachability-label / summary-DAG index (DESIGN.md
  /// §12) and compose query sink bags from it — O(label) per query
  /// instead of O(ancestor sub-graph). The index is refreshed lazily:
  /// mutators only record their affected sets, and the next query (or
  /// snapshot publication) coalesces them into one incremental
  /// rebuild. Decisions are bit-identical to the classic engines;
  /// turning this off keeps classic extraction as the differential
  /// oracle.
  bool use_reachability_index = true;

  /// Build budgets for the reachability index; a breach marks the
  /// index not-ready and queries fall back to classic extraction.
  graph::ReachabilityOptions reachability_options;
};

/// \brief The user-facing facade: a subject hierarchy plus an explicit
/// access control matrix, answering effective-authorization queries
/// under any of the 48 conflict-resolution strategies.
///
/// Typical use:
///
///     auto system = AccessControlSystem::Create(std::move(dag));
///     system->SetStrategy(ParseStrategy("D+LP-").value());
///     system->Grant("payroll", "salary.xls", "read");
///     system->DenyAccess("interns", "salary.xls", "read");
///     bool ok = system->CheckAccessByName("alice", "salary.xls", "read");
///
/// Thread-safety: the classic entry points (`CheckAccess`, the
/// mutators) are not synchronized against each other — callers quiesce
/// readers around writes, as before. With snapshot reads enabled
/// (DESIGN.md §11) the contract widens: any number of threads may call
/// `CheckAccessSnapshot` concurrently with a single mutating thread —
/// mutators serialize on an internal write lock, publish an immutable
/// `HierarchySnapshot` per edit (or per batch), and snapshot readers
/// pin an epoch and never touch the master state or any lock.
class AccessControlSystem {
 public:
  /// Takes ownership of the hierarchy.
  explicit AccessControlSystem(graph::Dag dag, SystemOptions options = {});

  /// \brief Adopts a hierarchy *and* a pre-populated explicit matrix
  /// wholesale — the binary snapshot loader's constructor
  /// (core/binary_snapshot.h).
  ///
  /// The text loader replays entries through `Grant`/`DenyAccess`,
  /// which re-interns object/right names in entry order; a snapshot
  /// must instead preserve the saved intern order exactly (interned
  /// ids persist in WAL-adjacent state and in callers' hands), so this
  /// path skips replay and takes the matrix as-is. Caches start cold;
  /// the matrix's epoch history is its own.
  /// (`options` is deliberately not defaulted: `{dag, {}}` must keep
  /// resolving to the plain constructor above.)
  AccessControlSystem(graph::Dag dag, acm::ExplicitAcm eacm,
                      SystemOptions options);

  // Move-only: the caches reference internal state, and two live
  // copies of one policy store invite divergence bugs.
  AccessControlSystem(const AccessControlSystem&) = delete;
  AccessControlSystem& operator=(const AccessControlSystem&) = delete;
  AccessControlSystem(AccessControlSystem&&) = default;
  AccessControlSystem& operator=(AccessControlSystem&&) = default;

  const graph::Dag& dag() const { return dag_; }
  const acm::ExplicitAcm& eacm() const { return eacm_; }

  /// The propagation extension mode every query of this system applies
  /// (read by external engines — EffectiveMatrix, BatchResolver — so
  /// their derivations match this system's own decisions exactly).
  PropagationMode propagation_mode() const {
    return options_.propagation_mode;
  }

  /// The strategy used by queries that do not name one.
  const Strategy& strategy() const { return options_.default_strategy; }

  /// Reconfigures the session strategy. Cached decisions keyed under
  /// other strategies stay valid (the strategy is part of the key).
  /// Audit-logged: a strategy change flips every decision the old
  /// strategy and the new one disagree on, so the trail must show it.
  void SetStrategy(const Strategy& strategy);

  /// Grants `right` on `object` to `subject` explicitly.
  /// All three names are created/interned on first use except the
  /// subject, which must exist in the hierarchy.
  Status Grant(std::string_view subject, std::string_view object,
               std::string_view right);

  /// Denies `right` on `object` to `subject` explicitly.
  Status DenyAccess(std::string_view subject, std::string_view object,
                    std::string_view right);

  /// Removes any explicit authorization for the triple.
  Status Revoke(std::string_view subject, std::string_view object,
                std::string_view right);

  /// Effective decision for a triple under the session strategy.
  StatusOr<acm::Mode> CheckAccessByName(std::string_view subject,
                                        std::string_view object,
                                        std::string_view right);

  /// Effective decision under an explicit strategy.
  StatusOr<acm::Mode> CheckAccessByName(std::string_view subject,
                                        std::string_view object,
                                        std::string_view right,
                                        const Strategy& strategy);

  /// Id-based query (fast path).
  StatusOr<acm::Mode> CheckAccess(graph::NodeId subject, acm::ObjectId object,
                                  acm::RightId right,
                                  const Strategy& strategy);

  /// \brief Adds a membership edge `parent -> child` to the hierarchy
  /// at run time (new hires, reorganizations). Both subjects may be
  /// new (created on first mention). Fails if the edge would create a
  /// cycle or already exists; on failure the hierarchy is unchanged.
  ///
  /// The edit is applied in place (no hierarchy rebuild) and cache
  /// invalidation is scoped to the *affected set* — the edited child
  /// and its descendants in the membership direction, the only
  /// subjects whose ancestor sub-graphs the edit can change. Cached
  /// state for every other subject survives (DESIGN.md §10). When
  /// `affected` is non-null it receives the affected node ids, e.g.
  /// to forward to `BatchResolver::InvalidateSubjects`.
  Status AddMembership(std::string_view parent, std::string_view child,
                       std::vector<graph::NodeId>* affected = nullptr);

  /// Removes a membership edge. Fails if absent. Invalidation is
  /// scoped exactly like AddMembership. Subjects are never removed —
  /// a node that loses its last membership becomes a root.
  Status RemoveMembership(std::string_view parent, std::string_view child,
                          std::vector<graph::NodeId>* affected = nullptr);

  /// One operation of a mutation batch (ApplyMutations).
  struct MutationOp {
    enum class Kind : uint8_t {
      kGrant = 0,
      kDeny,
      kRevoke,
      kAddMembership,
      kRemoveMembership,
    };
    Kind kind = Kind::kGrant;
    /// Subject (rights ops) or parent group (membership ops).
    std::string subject;
    /// Object (rights ops) or child subject (membership ops).
    std::string object;
    /// Right name; ignored by membership ops.
    std::string right;

    static MutationOp Grant(std::string subject, std::string object,
                            std::string right) {
      return {Kind::kGrant, std::move(subject), std::move(object),
              std::move(right)};
    }
    static MutationOp Deny(std::string subject, std::string object,
                           std::string right) {
      return {Kind::kDeny, std::move(subject), std::move(object),
              std::move(right)};
    }
    static MutationOp Revoke(std::string subject, std::string object,
                             std::string right) {
      return {Kind::kRevoke, std::move(subject), std::move(object),
              std::move(right)};
    }
    static MutationOp AddMember(std::string parent, std::string child) {
      return {Kind::kAddMembership, std::move(parent), std::move(child), {}};
    }
    static MutationOp RemoveMember(std::string parent, std::string child) {
      return {Kind::kRemoveMembership, std::move(parent), std::move(child),
              {}};
    }
  };

  /// Stable lower-case name of a mutation-op kind ("grant", "deny",
  /// "revoke", "add_membership", "remove_membership") — error messages
  /// and tooling output.
  static const char* MutationOpKindName(MutationOp::Kind kind);

  /// What a mutation batch did, for observability and for forwarding
  /// the coalesced affected set to external caches.
  struct MutationBatchStats {
    /// Sentinel for `failed_index`: every op applied.
    static constexpr size_t kNone = static_cast<size_t>(-1);

    size_t applied = 0;              ///< Ops executed successfully.
    size_t invalidated_entries = 0;  ///< Cache entries dropped.
    /// Index into the batch of the op that failed, or `kNone` when the
    /// whole batch applied. On failure `failed_index == applied`: the
    /// ops before it are master state, the rest were never attempted —
    /// exactly what a caller (or WAL replay) needs to resume
    /// deterministically after the last applied op.
    size_t failed_index = kNone;
    /// Log sequence number of this batch's WAL commit record; 0 when
    /// the system is not running on a durable store (core/
    /// persistent_system.h fills it in).
    uint64_t last_lsn = 0;
    /// Union of the per-edit affected sets, ascending by node id.
    std::vector<graph::NodeId> affected;
  };

  /// \brief Applies a batch of mutations in order, coalescing the
  /// hierarchy edits' affected sets into a single scoped invalidation
  /// sweep at the end — a reorg touching one subtree N times pays one
  /// sweep, not N.
  ///
  /// Rights edits (grant/deny/revoke) are column-scoped by the EACM
  /// epochs and need no sweep. Stops at the first failing op (prior
  /// ops stay applied — each op is individually atomic and the sweep
  /// still covers them); no query may run between the failing batch
  /// and the returned status being handled. A failure Status names the
  /// failing op's index and kind, and `stats->failed_index` carries the
  /// index so callers resume without parsing the message.
  Status ApplyMutations(std::span<const MutationOp> ops,
                        MutationBatchStats* stats = nullptr);

  /// One access query of a batch.
  struct AccessQuery {
    graph::NodeId subject = 0;
    acm::ObjectId object = 0;
    acm::RightId right = 0;
  };

  /// \brief Resolves a batch of queries under one strategy, optionally
  /// on several threads. Results align positionally with `queries`.
  ///
  /// The hierarchy and the explicit matrix are immutable during the
  /// call, so multi-threaded execution is safe; it bypasses the
  /// (unsynchronized) caches and resolves each query from scratch,
  /// which still wins once the batch is large. `threads` = 0 or 1 runs
  /// inline and uses the caches.
  StatusOr<std::vector<acm::Mode>> CheckAccessBatch(
      std::span<const AccessQuery> queries, const Strategy& strategy,
      size_t threads = 1);

  /// Decisions for one triple under all 48 canonical strategies, in
  /// `AllStrategies()` order. Demonstrates the parametric algorithm:
  /// one propagation, 48 resolutions.
  StatusOr<std::vector<acm::Mode>> CheckAccessAllStrategies(
      graph::NodeId subject, acm::ObjectId object, acm::RightId right);

  /// \brief One column of the *effective* access control matrix: the
  /// derived mode of every subject for (object, right) under
  /// `strategy`, indexed by node id. Computed with the whole-graph
  /// propagation engine in one topological pass.
  StatusOr<std::vector<acm::Mode>> MaterializeEffectiveColumn(
      acm::ObjectId object, acm::RightId right, const Strategy& strategy);

  /// Cache observability.
  const ResolutionCache& resolution_cache() const { return resolution_cache_; }
  const SubgraphCache& subgraph_cache() const { return subgraph_cache_; }

  /// \brief The reachability index for the *current* master state,
  /// building or incrementally refreshing it first (DESIGN.md §12).
  ///
  /// Null when `use_reachability_index` is off. May report
  /// `ready() == false` after a budget breach — queries then fall back
  /// to classic extraction on their own. Primarily for tests, benches
  /// and exposition; queries refresh the index on demand themselves.
  /// Not thread-safe (same contract as the caches/mutators).
  const graph::ReachabilityIndex* reachability_index();

  // -- Epoch-pinned snapshot reads (DESIGN.md §11) -------------------

  /// \brief Switches the system to snapshot publication: every
  /// successful mutator from here on builds the next immutable
  /// `HierarchySnapshot` and publishes it with one atomic swap, and
  /// `CheckAccessSnapshot` serves lock-free from the published one.
  ///
  /// Publishes snapshot #1 immediately, warmed from the serial
  /// resolution cache so an already-hot system does not restart cold.
  /// Idempotent; not thread-safe against concurrent mutators (enable
  /// before going concurrent, like any other configuration).
  void EnableSnapshotReads();

  bool snapshot_reads_enabled() const { return snapshot_state_ != nullptr; }

  /// The epoch machinery, for pinning across multi-query work and for
  /// observability (`current_epoch`, `active_readers`). Null until
  /// `EnableSnapshotReads`.
  const SnapshotManager* snapshots() const {
    return snapshot_state_ != nullptr ? &snapshot_state_->manager : nullptr;
  }

  /// \brief Lock-free effective decision against the currently
  /// published snapshot, under the snapshot's session strategy.
  ///
  /// Safe from any thread while mutators run concurrently; the answer
  /// reflects the policy state as of the pinned epoch (at most one
  /// publication behind the master). Fails with kFailedPrecondition
  /// when snapshot reads are not enabled.
  StatusOr<acm::Mode> CheckAccessSnapshot(graph::NodeId subject,
                                          acm::ObjectId object,
                                          acm::RightId right) const;

  /// Lock-free decision under an explicit strategy.
  StatusOr<acm::Mode> CheckAccessSnapshot(graph::NodeId subject,
                                          acm::ObjectId object,
                                          acm::RightId right,
                                          const Strategy& strategy) const;

  /// Name-based snapshot query; names resolve against the pinned
  /// snapshot's own hierarchy/matrix (still lock-free).
  StatusOr<acm::Mode> CheckAccessSnapshotByName(std::string_view subject,
                                                std::string_view object,
                                                std::string_view right) const;

 private:
  /// Everything the snapshot write path needs, boxed so the system
  /// stays movable (a mutex member would delete the default moves).
  struct SnapshotState {
    /// Serializes mutators and snapshot publication. Instrumented via
    /// the `ucr_write_lock_*` family — never taken by readers.
    std::mutex write_mu;
    SnapshotManager manager;
    /// Resolution-table slots for the next snapshot; doubled when a
    /// published table fills past half, so steady-state stores stop
    /// being skipped.
    size_t resolution_capacity = size_t{1} << 14;
    /// Mutations applied since the last publication (drives the
    /// `ucr_epoch_lag` gauge; nonzero only mid-batch).
    uint64_t pending_mutations = 0;
  };

  Status SetMode(std::string_view subject, std::string_view object,
                 std::string_view right, acm::Mode mode);

  /// Revoke body shared by the locked public wrapper and batches.
  Status RevokeUnlocked(std::string_view subject, std::string_view object,
                        std::string_view right);

  /// Builds the next snapshot from the master state (carrying over
  /// what survives from the current one) and publishes it. Requires
  /// `snapshot_state_` non-null and `write_mu` held (single writer).
  void PublishSnapshotLocked();

  /// Bumps the pending-mutation count / lag gauge after one applied
  /// op. No-op when snapshots are disabled.
  void NoteMutationApplied();

  /// Applies one membership edit in place (`add` selects insert vs
  /// erase), appends the affected node ids to `affected`, and emits
  /// the audit event. Does NOT invalidate caches — callers scope one
  /// sweep over the (possibly coalesced) affected set.
  Status MutateMembership(bool add, std::string_view parent,
                          std::string_view child,
                          std::vector<graph::NodeId>* affected);

  /// One reachability-scoped invalidation sweep over `affected` (or a
  /// full clear with incremental updates disabled). Returns the number
  /// of cache entries dropped.
  size_t InvalidateAffected(const std::vector<graph::NodeId>& affected);

  /// \brief Brings `reach_index_` up to date with the master state.
  ///
  /// Deferred and coalesced: mutators only append to the dirty sets
  /// below, and the next consumer (query miss, batch, snapshot
  /// publication) pays one incremental rebuild for the whole run of
  /// edits — a reorg touching one subtree N times rebuilds once. No-op
  /// when the index is current or `use_reachability_index` is off.
  void EnsureReachIndexCurrent();

  /// Records reach-index dirt after one applied rights edit: the
  /// subject's row changed, which can re-class it and therefore
  /// relabel everything that can see it (its descendants).
  void NoteRightsEdit(graph::NodeId subject);

  graph::Dag dag_;
  acm::ExplicitAcm eacm_;
  SystemOptions options_;
  ResolutionCache resolution_cache_;
  SubgraphCache subgraph_cache_;
  std::unique_ptr<SnapshotState> snapshot_state_;

  /// Last built reachability index (shared with published snapshots;
  /// queries verify generation/epoch before trusting it). Null until
  /// the first consumer builds it.
  std::shared_ptr<const graph::ReachabilityIndex> reach_index_;
  /// Subjects whose ancestor set or row changed since `reach_index_`
  /// was built, closed under hierarchy descendants (unsorted, may hold
  /// duplicates; coalesced by EnsureReachIndexCurrent).
  std::vector<graph::NodeId> reach_dirty_affected_;
  /// Subjects whose explicit row changed since `reach_index_` was
  /// built.
  std::vector<graph::NodeId> reach_dirty_rows_;
};

}  // namespace ucr::core

#endif  // UCR_CORE_SYSTEM_H_
