#include "core/relalg_impl.h"

#include <optional>
#include <vector>

#include "relalg/operators.h"

namespace ucr::core {

namespace {

using relalg::Relation;
using relalg::Row;
using relalg::Schema;
using relalg::Value;
using relalg::ValueType;

Schema SubjectSchema() {
  return Schema({{"subject", ValueType::kString}});
}

const std::vector<std::string>& PColumns() {
  static const std::vector<std::string>& cols = *new std::vector<std::string>{
      "subject", "object", "right", "dis", "mode"};
  return cols;
}

}  // namespace

Relation BuildSdagRelation(const graph::Dag& dag) {
  Relation out{Schema(
      {{"subject", ValueType::kString}, {"child", ValueType::kString}})};
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    for (graph::NodeId c : dag.children(v)) {
      out.AppendUnchecked(Row{Value(dag.name(v)), Value(dag.name(c))});
    }
  }
  return out;
}

Relation BuildEacmRelation(const acm::ExplicitAcm& eacm,
                           const graph::Dag& dag) {
  Relation out{Schema({{"subject", ValueType::kString},
                       {"object", ValueType::kString},
                       {"right", ValueType::kString},
                       {"mode", ValueType::kString}})};
  for (const auto& e : eacm.SortedEntries()) {
    out.AppendUnchecked(Row{Value(dag.name(e.subject)),
                            Value(eacm.object_name(e.object)),
                            Value(eacm.right_name(e.right)),
                            Value(std::string(1, acm::ModeToChar(e.mode)))});
  }
  return out;
}

StatusOr<Relation> AncestorsRelalg(const Relation& sdag,
                                   std::string_view subject) {
  // ancestors(s) = {s} ∪ {x | ∃y: <x,y> ∈ SDAG ∧ y ∈ ancestors(s)} —
  // the paper's recursive definition, evaluated as a semi-naive-free
  // fixpoint (the graphs are small enough that naive iteration is the
  // clearer transcription).
  Relation anc{SubjectSchema()};
  anc.AppendUnchecked(Row{Value(std::string(subject))});
  for (;;) {
    UCR_ASSIGN_OR_RETURN(Relation as_child,
                         relalg::Rename(anc, "subject", "child"));
    const Relation joined = relalg::NaturalJoin(sdag, as_child);
    UCR_ASSIGN_OR_RETURN(Relation parents,
                         relalg::Project(joined, {"subject"}));
    UCR_ASSIGN_OR_RETURN(Relation unioned, relalg::Union(anc, parents));
    Relation next = relalg::Distinct(unioned);
    if (next.size() == anc.size()) return next;
    anc = std::move(next);
  }
}

namespace {

/// Shared body of PropagateRelalg / PropagateRelalgFullP; returns the
/// full relation P. Fig. 5 lines 1–11.
StatusOr<Relation> PropagateP(const Relation& sdag, const Relation& eacm,
                              std::string_view subject,
                              std::string_view object,
                              std::string_view right) {
  const Value s_value{std::string(subject)};

  // Line 1: SDAG' — edges with both endpoints in ancestors(s).
  UCR_ASSIGN_OR_RETURN(const Relation anc, AncestorsRelalg(sdag, subject));
  const Relation half = relalg::NaturalJoin(sdag, anc);
  UCR_ASSIGN_OR_RETURN(const Relation anc_as_child,
                       relalg::Rename(anc, "subject", "child"));
  const Relation sdag_prime = relalg::NaturalJoin(half, anc_as_child);

  // Line 3: seed P with the explicit authorizations of the
  // sub-hierarchy's nodes at distance 0. (Documented deviation: the
  // node set is ancestors(s) — which includes s — rather than the
  // subject column of SDAG'; see the header.)
  UCR_ASSIGN_OR_RETURN(
      Relation eacm_sel,
      relalg::SelectEquals(eacm, "object", Value(std::string(object))));
  UCR_ASSIGN_OR_RETURN(
      eacm_sel,
      relalg::SelectEquals(eacm_sel, "right", Value(std::string(right))));
  Relation joined = relalg::NaturalJoin(anc, eacm_sel);
  UCR_ASSIGN_OR_RETURN(Relation p_seed,
                       relalg::Project(joined, {"subject", "object", "right",
                                                "mode"}));
  UCR_ASSIGN_OR_RETURN(p_seed,
                       relalg::ExtendConstant(p_seed, "dis", Value(int64_t{0})));
  UCR_ASSIGN_OR_RETURN(Relation p, relalg::Project(p_seed, PColumns()));

  // Line 4: unlabeled roots = ancestors − children(SDAG') − labeled.
  UCR_ASSIGN_OR_RETURN(Relation children_col,
                       relalg::Project(sdag_prime, {"child"}));
  UCR_ASSIGN_OR_RETURN(Relation children_as_subject,
                       relalg::Rename(relalg::Distinct(children_col), "child",
                                      "subject"));
  UCR_ASSIGN_OR_RETURN(Relation labeled,
                       relalg::Project(p, {"subject"}));
  UCR_ASSIGN_OR_RETURN(Relation roots,
                       relalg::Difference(anc, children_as_subject));
  UCR_ASSIGN_OR_RETURN(roots,
                       relalg::Difference(roots, relalg::Distinct(labeled)));

  // Line 5: P ∪= Roots × {⟨object, right, 0, 'd'⟩}.
  Relation default_tuple{Schema({{"object", ValueType::kString},
                                 {"right", ValueType::kString},
                                 {"dis", ValueType::kInt},
                                 {"mode", ValueType::kString}})};
  default_tuple.AppendUnchecked(Row{Value(std::string(object)),
                                    Value(std::string(right)),
                                    Value(int64_t{0}), Value("d")});
  const Relation defaults = relalg::NaturalJoin(roots, default_tuple);
  UCR_ASSIGN_OR_RETURN(p, relalg::Union(p, defaults));

  // Line 6: P' — everything not yet at the sink.
  UCR_ASSIGN_OR_RETURN(Relation p_prime,
                       relalg::SelectNotEquals(p, "subject", s_value));

  // Lines 7–11: push every frontier tuple down one edge per iteration.
  int64_t i = 0;
  while (!p_prime.empty()) {
    ++i;
    const Relation stepped = relalg::NaturalJoin(p_prime, sdag_prime);
    UCR_ASSIGN_OR_RETURN(
        Relation moved,
        relalg::Project(stepped, {"child", "object", "right", "mode"}));
    UCR_ASSIGN_OR_RETURN(moved, relalg::Rename(moved, "child", "subject"));
    UCR_ASSIGN_OR_RETURN(moved, relalg::ExtendConstant(moved, "dis", Value(i)));
    UCR_ASSIGN_OR_RETURN(p_prime, relalg::Project(moved, PColumns()));
    UCR_ASSIGN_OR_RETURN(p, relalg::Union(p, p_prime));
    UCR_ASSIGN_OR_RETURN(p_prime,
                         relalg::SelectNotEquals(p_prime, "subject", s_value));
  }
  return p;
}

}  // namespace

StatusOr<Relation> PropagateRelalg(const Relation& sdag, const Relation& eacm,
                                   std::string_view subject,
                                   std::string_view object,
                                   std::string_view right) {
  UCR_ASSIGN_OR_RETURN(const Relation p,
                       PropagateP(sdag, eacm, subject, object, right));
  // Line 12: σ subject = s.
  return relalg::SelectEquals(p, "subject", Value(std::string(subject)));
}

StatusOr<Relation> PropagateRelalgFullP(const Relation& sdag,
                                        const Relation& eacm,
                                        std::string_view subject,
                                        std::string_view object,
                                        std::string_view right) {
  return PropagateP(sdag, eacm, subject, object, right);
}

StatusOr<acm::Mode> ResolveRelalg(const Relation& all_rights,
                                  const Strategy& strategy,
                                  ResolveTrace* trace) {
  const Strategy s = strategy.Canonical();
  ResolveTrace local_trace;
  ResolveTrace& t = trace != nullptr ? *trace : local_trace;
  t = ResolveTrace{};

  const Value d_value{"d"};
  const Value plus{"+"};
  const Value minus{"-"};

  // Lines 2–3: the default rule.
  Relation rights = all_rights;
  if (s.default_rule == DefaultRule::kNone) {
    UCR_ASSIGN_OR_RETURN(rights,
                         relalg::SelectNotEquals(rights, "mode", d_value));
  } else {
    const Value replacement =
        s.default_rule == DefaultRule::kPositive ? plus : minus;
    const size_t mode_idx = rights.schema().IndexOf("mode");
    if (mode_idx == Schema::npos) {
      return Status::InvalidArgument("allRights lacks a 'mode' attribute");
    }
    rights.Update("mode", replacement,
                  [&](const Row& r) { return r[mode_idx] == d_value; });
  }

  // The locality filter σ dis = lRule(dis), used by lines 5 and 7.
  auto locality = [&](const Relation& input) -> StatusOr<Relation> {
    if (s.locality_rule == LocalityRule::kIdentity) return input;
    UCR_ASSIGN_OR_RETURN(const std::optional<int64_t> target,
                         s.locality_rule == LocalityRule::kMostSpecific
                             ? relalg::MinInt(input, "dis")
                             : relalg::MaxInt(input, "dis"));
    if (!target.has_value()) return Relation(input.schema());
    return relalg::SelectEquals(input, "dis", Value(*target));
  };

  // Lines 4–6: the majority rule.
  if (s.majority_rule != MajorityRule::kSkip) {
    Relation counted = rights;
    if (s.majority_rule == MajorityRule::kAfter) {
      UCR_ASSIGN_OR_RETURN(counted, locality(rights));
    }
    UCR_ASSIGN_OR_RETURN(const Relation positives,
                         relalg::SelectEquals(counted, "mode", plus));
    UCR_ASSIGN_OR_RETURN(const Relation negatives,
                         relalg::SelectEquals(counted, "mode", minus));
    const size_t c1 = relalg::Count(positives);
    const size_t c2 = relalg::Count(negatives);
    t.c1 = c1;
    t.c2 = c2;
    if (c1 != c2) {
      t.result = c1 > c2 ? acm::Mode::kPositive : acm::Mode::kNegative;
      t.returned_line = 6;
      return t.result;
    }
  }

  // Lines 7–8: Auth ← Π mode (σ dis=lRule(dis) allRights).
  UCR_ASSIGN_OR_RETURN(const Relation filtered, locality(rights));
  UCR_ASSIGN_OR_RETURN(Relation auth, relalg::Project(filtered, {"mode"}));
  auth = relalg::Distinct(auth);
  t.auth_computed = true;
  for (const Row& r : auth.rows()) {
    if (r[0] == plus) t.auth_has_positive = true;
    if (r[0] == minus) t.auth_has_negative = true;
  }
  if (relalg::Count(auth) == 1) {
    t.result = t.auth_has_positive ? acm::Mode::kPositive
                                   : acm::Mode::kNegative;
    t.returned_line = 8;
    return t.result;
  }

  // Line 9: the preference rule.
  t.result = s.preference_rule == PreferenceRule::kPositive
                 ? acm::Mode::kPositive
                 : acm::Mode::kNegative;
  t.returned_line = 9;
  return t.result;
}

StatusOr<acm::Mode> ResolveAccessRelalg(const graph::Dag& dag,
                                        const acm::ExplicitAcm& eacm,
                                        graph::NodeId subject,
                                        acm::ObjectId object,
                                        acm::RightId right,
                                        const Strategy& strategy,
                                        ResolveTrace* trace) {
  if (subject >= dag.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= eacm.object_count() || right >= eacm.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  const Relation sdag = BuildSdagRelation(dag);
  const Relation eacm_rel = BuildEacmRelation(eacm, dag);
  UCR_ASSIGN_OR_RETURN(
      const Relation all_rights,
      PropagateRelalg(sdag, eacm_rel, dag.name(subject),
                      eacm.object_name(object), eacm.right_name(right)));
  return ResolveRelalg(all_rights, strategy, trace);
}

StatusOr<RightsBag> RelationToRightsBag(const Relation& all_rights) {
  const size_t dis_idx = all_rights.schema().IndexOf("dis");
  const size_t mode_idx = all_rights.schema().IndexOf("mode");
  if (dis_idx == Schema::npos || mode_idx == Schema::npos) {
    return Status::InvalidArgument(
        "allRights relation needs 'dis' and 'mode' attributes");
  }
  RightsBag bag;
  for (const Row& r : all_rights.rows()) {
    const int64_t dis = r[dis_idx].AsInt();
    if (dis < 0) return Status::Corruption("negative distance");
    const std::string& mode = r[mode_idx].AsString();
    acm::PropagatedMode pm;
    if (mode == "+") {
      pm = acm::PropagatedMode::kPositive;
    } else if (mode == "-") {
      pm = acm::PropagatedMode::kNegative;
    } else if (mode == "d") {
      pm = acm::PropagatedMode::kDefault;
    } else {
      return Status::Corruption("unknown mode '" + mode + "'");
    }
    bag.Add(static_cast<uint32_t>(dis), pm, 1);
  }
  bag.Normalize();
  return bag;
}

}  // namespace ucr::core
