#ifndef UCR_CORE_WAL_H_
#define UCR_CORE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/system.h"
#include "util/status.h"

namespace ucr::core {

/// \brief Write-ahead log of `MutationOp` batches (DESIGN.md §15).
///
/// The log is the durability half of the unified append path: the same
/// `MutationOp` stream `ApplyMutations` consumes is encoded here
/// *before* the in-memory apply, and the PR-4 audit ring receives one
/// `kWalCommit` event per committed batch carrying the same LSN — the
/// LSN is the join key between the durable log and the audit trail.
///
/// On-disk layout (little-endian):
///
///     "UCRWAL01"                                (8-byte file magic)
///     record*:  u32 payload_len | u32 crc32(payload) | payload
///
/// and every payload starts `u8 record_type | u64 lsn`:
///
///     kOp (1):        u8 kind | str subject | str object | str right
///     kCommit (2):    u64 op_count | u64 applied_count
///     kStrategy (3):  str mnemonic
///
/// LSNs are monotonic from 1 and every record carries its own, so
/// recovery can skip everything at or below a snapshot's LSN without
/// decoding bodies.
///
/// Commit protocol (group commit): a batch's op records are buffered
/// and written *unsynced*, the in-memory apply runs, then one `kCommit`
/// record — carrying how many of those ops actually applied — is
/// appended and the whole run is fsync'd once. A crash before the
/// commit record leaves a torn tail that replay discards (the batch was
/// never acknowledged); a crash after it replays exactly the
/// `applied_count` prefix. Either way the recovered state matches some
/// acknowledged history — the recovery test shadow-verifies this
/// bit-identically against a never-crashed twin.
///
/// Fail-stop on I/O error: after any append or fsync failure the
/// writer is *poisoned* — partial record bytes may sit on disk, and a
/// later successful append would land *after* that torn region, where
/// the recovery scan (which stops at the first invalid byte) could
/// never reach it. Poisoned writers fail every `BeginBatch`/`Commit`/
/// `AppendStrategyChange`/`Sync` with `kFailedPrecondition`; `Reset`
/// (compaction truncates back to a known-good state) is the one path
/// that heals the latch.
class WalWriter {
 public:
  /// Record types (payload byte 0).
  enum class RecordType : uint8_t {
    kOp = 1,
    kCommit = 2,
    kStrategy = 3,
  };

  /// Creates the log (with magic) if absent, else opens for append.
  /// `next_lsn` is the first LSN this writer will assign — recovery
  /// passes `last_lsn + 1` from its replay scan.
  static StatusOr<WalWriter> Open(std::string path, uint64_t next_lsn);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// \brief Writes one op record per op, unsynced (write-ahead: called
  /// before the in-memory apply). The batch is not yet durable —
  /// `Commit` makes it so.
  Status BeginBatch(std::span<const AccessControlSystem::MutationOp> ops);

  /// \brief Appends the commit record for the `BeginBatch` ops
  /// (`applied` = how many of them the in-memory apply executed) and
  /// fsyncs — the batch's single fsync. Returns the commit LSN.
  StatusOr<uint64_t> Commit(size_t op_count, size_t applied);

  /// Appends a strategy-change record and fsyncs (strategy flips every
  /// decision the old and new strategies disagree on, so it must be as
  /// durable as the data). Returns the record's LSN.
  StatusOr<uint64_t> AppendStrategyChange(std::string_view mnemonic);

  /// \brief Relaxed group commit (PostgreSQL's `synchronous_commit =
  /// off`): when false, `Commit` and `AppendStrategyChange` still
  /// append in order but skip the per-record fsync, so a crash can
  /// lose the *most recent* commits — never reorder or tear them
  /// (recovery still yields a clean acknowledged prefix). `Sync`
  /// forces everything written so far to disk; the destructor and
  /// `Reset` sync any relaxed residue automatically. Default: every
  /// commit is fsync'd.
  void set_sync_on_commit(bool sync) { sync_on_commit_ = sync; }
  bool sync_on_commit() const { return sync_on_commit_; }

  /// Fsyncs all appended records now (a relaxed-mode barrier).
  Status Sync();

  /// \brief Truncates the log back to the bare magic after a snapshot
  /// made its contents redundant (compaction). `next_lsn` restarts the
  /// sequence *above* the snapshot's LSN — LSNs never go backwards
  /// across a compaction. Success clears a poisoned writer: the
  /// truncate discards any torn bytes a failed append left behind.
  Status Reset(uint64_t next_lsn);

  /// True after an append/fsync failure latched the writer (see the
  /// class comment); every append entry point fails until `Reset`.
  bool poisoned() const { return poisoned_; }

  /// Next LSN this writer will assign.
  uint64_t next_lsn() const { return next_lsn_; }

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, uint64_t next_lsn)
      : path_(std::move(path)), fd_(fd), next_lsn_(next_lsn) {}

  /// Encodes one record (length + CRC + payload) into `pending_`.
  void EncodeRecord(RecordType type, std::string_view body);

  /// write()s `pending_` (EINTR-safe) and optionally fsyncs.
  Status FlushPending(bool sync);

  /// Latches the writer after a failed append so nothing lands beyond
  /// torn bytes, and returns `status` for the caller to propagate.
  Status Poison(Status status);

  /// The `kFailedPrecondition` every append entry point returns while
  /// latched.
  Status PoisonedStatus() const;

  std::string path_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  bool sync_on_commit_ = true;
  bool unsynced_ = false;   ///< Relaxed commits written since last fsync.
  bool poisoned_ = false;   ///< Append path latched after an I/O failure.
  std::string pending_;    ///< Encoded-but-unwritten records.
  std::string scratch_;    ///< Payload build buffer, reused per record.
};

/// One replayable unit recovered from the log, in file order.
struct WalEvent {
  enum class Kind : uint8_t { kBatch = 0, kStrategyChange = 1 };
  Kind kind = Kind::kBatch;
  /// The commit record's LSN (batches) or the record's own (strategy).
  uint64_t lsn = 0;
  /// Batch: the logged ops and how many of them committed. Replay
  /// applies exactly the `applied` prefix.
  std::vector<AccessControlSystem::MutationOp> ops;
  size_t applied = 0;
  /// Strategy change: the canonical mnemonic.
  std::string strategy_mnemonic;
};

/// Everything a recovery scan learned from one WAL file.
struct WalContents {
  std::vector<WalEvent> events;  ///< Committed units, file order.
  uint64_t last_lsn = 0;         ///< Highest LSN of any valid record.
  /// Bytes of torn tail found (truncated record or CRC mismatch at the
  /// end — the signature of a crash mid-append).
  uint64_t torn_bytes = 0;
  /// Trailing op records with no commit record: an unacknowledged
  /// batch, discarded by design.
  size_t uncommitted_ops = 0;
};

/// \brief Scans a WAL file, validating every record's CRC and
/// structure. Stops at the first invalid byte and reports everything
/// before it; with `repair_torn_tail` the file is truncated back to
/// the last *committed* boundary (the end of the last `kCommit`/
/// `kStrategy` record). Valid-but-uncommitted trailing op records are
/// truncated too, not just torn bytes — if they stayed, the next
/// writer would append fresh batches after the orphans and the *next*
/// recovery scan would mis-count them into the following commit's
/// batch, discarding acknowledged history. A missing file is an empty
/// log (fresh store), not an error; a bad magic is `kCorruption`.
StatusOr<WalContents> ReadWal(const std::string& path, bool repair_torn_tail);

}  // namespace ucr::core

#endif  // UCR_CORE_WAL_H_
