#include "core/paper_example.h"

#include <cstdlib>

namespace ucr::core {

namespace {

void CheckOk(const Status& status) {
  if (!status.ok()) std::abort();  // Fixture is static; cannot fail.
}

PaperExample Build(bool referee_extension) {
  graph::DagBuilder builder;
  // Declare in S1..S8, User order so ids are stable and readable.
  for (const char* name :
       {"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "User"}) {
    builder.AddNode(name);
  }
  CheckOk(builder.AddEdge("S1", "S3"));
  CheckOk(builder.AddEdge("S2", "S3"));
  CheckOk(builder.AddEdge("S2", "User"));
  CheckOk(builder.AddEdge("S3", "S4"));
  CheckOk(builder.AddEdge("S3", "S5"));
  CheckOk(builder.AddEdge("S5", "User"));
  CheckOk(builder.AddEdge("S6", "S5"));
  CheckOk(builder.AddEdge("S6", "User"));
  CheckOk(builder.AddEdge("S4", "S7"));
  CheckOk(builder.AddEdge("S4", "S8"));
  if (referee_extension) {
    CheckOk(builder.AddEdge("S1", "S2"));
  }
  auto dag = std::move(builder).Build();
  if (!dag.ok()) std::abort();

  PaperExample ex;
  ex.dag = std::move(dag).value();
  auto obj = ex.eacm.InternObject("obj");
  auto read = ex.eacm.InternRight("read");
  if (!obj.ok() || !read.ok()) std::abort();
  ex.obj = *obj;
  ex.read = *read;
  CheckOk(ex.eacm.Set(ex.dag.FindNode("S2"), ex.obj, ex.read,
                      acm::Mode::kPositive));
  CheckOk(ex.eacm.Set(ex.dag.FindNode("S4"), ex.obj, ex.read,
                      acm::Mode::kPositive));
  CheckOk(ex.eacm.Set(ex.dag.FindNode("S5"), ex.obj, ex.read,
                      acm::Mode::kNegative));
  if (referee_extension) {
    CheckOk(ex.eacm.Set(ex.dag.FindNode("S1"), ex.obj, ex.read,
                        acm::Mode::kPositive));
  }
  ex.user = ex.dag.FindNode("User");
  return ex;
}

}  // namespace

PaperExample MakePaperExample() { return Build(/*referee_extension=*/false); }

PaperExample MakeRefereeExample() { return Build(/*referee_extension=*/true); }

}  // namespace ucr::core
