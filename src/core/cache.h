#ifndef UCR_CORE_CACHE_H_
#define UCR_CORE_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/strategy.h"
#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"
#include "obs/metrics.h"

namespace ucr::core {

namespace internal {

/// Registry handles for the cache metric family (DESIGN.md §8),
/// shared by the serial caches here and their sharded variants
/// (core/sharded_cache.h): both implement the same semantic caches,
/// so they feed one process-wide family. Interned once; every
/// recording call is lock-free.
struct CacheMetrics {
  obs::Counter& resolution_hits = obs::Registry::Global().GetCounter(
      "ucr_resolution_cache_hits_total", "Resolution cache hits");
  obs::Counter& resolution_misses = obs::Registry::Global().GetCounter(
      "ucr_resolution_cache_misses_total", "Resolution cache misses");
  obs::Counter& resolution_invalidations = obs::Registry::Global().GetCounter(
      "ucr_resolution_cache_invalidations_total",
      "Resolution cache entries dropped because their column epoch lapsed");
  obs::Counter& resolution_evictions = obs::Registry::Global().GetCounter(
      "ucr_resolution_cache_evictions_total",
      "Resolution cache entries dropped by Clear()");
  obs::Counter& subgraph_hits = obs::Registry::Global().GetCounter(
      "ucr_subgraph_cache_hits_total", "Sub-graph cache hits");
  obs::Counter& subgraph_misses = obs::Registry::Global().GetCounter(
      "ucr_subgraph_cache_misses_total", "Sub-graph cache misses");
  obs::Counter& subgraph_invalidations = obs::Registry::Global().GetCounter(
      "ucr_subgraph_cache_invalidations_total",
      "Sub-graph cache entries dropped by reachability-scoped "
      "invalidation after a hierarchy edit");
  obs::Counter& subgraph_evictions = obs::Registry::Global().GetCounter(
      "ucr_subgraph_cache_evictions_total",
      "Sub-graph cache entries dropped by Clear()");
};

CacheMetrics& GetCacheMetrics();

/// Emits a kCacheClear audit event (`which` names the cache, `dropped`
/// counts the discarded entries). Shared by the serial and sharded
/// cache variants; no-op when the audit log is not running.
void AuditCacheClear(const char* which, uint64_t dropped);

}  // namespace internal

/// \brief Memo of resolved authorizations — the paper's future-work
/// item #1 (§6): "it would significantly improve the performance of
/// the algorithm if the derived authorizations ... were stored in a
/// cache for later uses."
///
/// Entries are keyed by ⟨subject, object, right, strategy⟩ and
/// validated against the explicit matrix's per-column mutation epoch:
/// an EACM change lapses exactly the touched column's entries (older
/// epochs simply miss). Hierarchy edits invalidate by *subject*
/// instead — the write path computes the set of subjects whose
/// ancestor sub-graphs the edit can change and calls `EraseSubjects`,
/// so decisions for everyone else stay warm (DESIGN.md §10).
///
/// Not thread-safe; wrap externally if shared.
class ResolutionCache {
 public:
  ResolutionCache() = default;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  ///< Entries dropped due to epoch change.
    uint64_t evictions = 0;      ///< Entries dropped by Clear().
  };

  /// Looks up a cached decision valid at `epoch`. Updates stats.
  std::optional<acm::Mode> Lookup(graph::NodeId subject, acm::ObjectId object,
                                  acm::RightId right, const Strategy& strategy,
                                  uint64_t epoch);

  /// Stores a decision computed at `epoch`.
  void Store(graph::NodeId subject, acm::ObjectId object, acm::RightId right,
             const Strategy& strategy, uint64_t epoch, acm::Mode mode);

  /// Drops every entry and resets the rate stats (hits, misses,
  /// invalidations), so hit rates never mix cache lifetimes. The
  /// `evictions` tally accumulates across clears — it counts drops,
  /// not a rate — and the registry's eviction counter mirrors it
  /// process-wide.
  void Clear();

  /// \brief Reachability-scoped invalidation (DESIGN.md §10): drops
  /// only the entries whose subject is marked in `affected` (a
  /// node-id-indexed bitmap; ids at or past its end are unaffected).
  /// Counted as invalidations, not evictions — entries outside the
  /// affected set survive with their hit/miss history intact, which is
  /// the whole point of scoping. Returns the number dropped.
  size_t EraseSubjects(const std::vector<uint8_t>& affected);

  /// Enumerates every entry as ⟨subject, object, right, canonical
  /// strategy index, derivation epoch, mode⟩. Used to warm the first
  /// epoch snapshot from a system whose serial cache is already hot
  /// (DESIGN.md §11); the consumer re-validates the epoch itself.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, entry] : entries_) {
      fn(static_cast<graph::NodeId>(key.triple >> 32),
         static_cast<acm::ObjectId>((key.triple >> 16) & 0xFFFF),
         static_cast<acm::RightId>(key.triple & 0xFFFF), key.strategy,
         entry.epoch, entry.mode);
    }
  }

  size_t size() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t epoch;
    acm::Mode mode;
  };

  struct CacheKey {
    uint64_t triple;   // subject:32 | object:16 | right:16.
    uint8_t strategy;  // canonical index, < 48.
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return (k.triple * 0x9E3779B97F4A7C15ull) ^ k.strategy;
    }
  };

  static CacheKey Key(graph::NodeId s, acm::ObjectId o, acm::RightId r,
                      const Strategy& strategy) {
    return CacheKey{(static_cast<uint64_t>(s) << 32) |
                        (static_cast<uint64_t>(o) << 16) |
                        static_cast<uint64_t>(r),
                    strategy.CanonicalIndex()};
  }

  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
  Stats stats_;
};

/// \brief Cache of extracted ancestor sub-graphs, keyed by subject.
///
/// Sub-graph extraction is the per-query fixed cost of Resolve()
/// (Step 1); extracted sub-graphs are shared across objects, rights,
/// and strategies. A hierarchy edit invalidates exactly the subjects
/// whose ancestor sets it can change — the write path drops those via
/// `EraseSubjects` and every other entry stays warm (DESIGN.md §10).
class SubgraphCache {
 public:
  SubgraphCache() = default;

  /// Returns the cached sub-graph of `subject`, extracting on miss.
  /// The reference stays valid for the cache's lifetime.
  const graph::AncestorSubgraph& Get(const graph::Dag& dag,
                                     graph::NodeId subject);

  size_t size() const { return subgraphs_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Drops the sub-graphs *and* the hit/miss counters: after a clear
  /// the cache is indistinguishable from a fresh one, so hit-rate
  /// reporting never mixes epochs of the hierarchy.
  void Clear();

  /// Drops only the sub-graphs of subjects marked in `affected` (see
  /// `ResolutionCache::EraseSubjects`). Survivors keep their storage
  /// and the hit/miss history keeps accumulating — a scoped edit is
  /// not a new cache lifetime. Returns the number dropped.
  size_t EraseSubjects(const std::vector<uint8_t>& affected);

 private:
  std::unordered_map<graph::NodeId,
                     std::unique_ptr<graph::AncestorSubgraph>>
      subgraphs_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ucr::core

#endif  // UCR_CORE_CACHE_H_
