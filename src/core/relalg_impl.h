#ifndef UCR_CORE_RELALG_IMPL_H_
#define UCR_CORE_RELALG_IMPL_H_

#include <string>
#include <string_view>

#include "acm/acm.h"
#include "core/resolve.h"
#include "core/rights_bag.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "relalg/relation.h"
#include "util/status.h"

namespace ucr::core {

/// \file
/// Paper-literal implementations of Function Propagate() (Fig. 5) and
/// Algorithm Resolve() (Fig. 4), transcribed operator-for-operator
/// onto the `ucr::relalg` engine. These are the *reference* versions:
/// slow by construction, but in one-to-one correspondence with the
/// published pseudocode, and differentially tested against the native
/// engine on every strategy.
///
/// One documented deviation from Fig. 5: the paper joins the explicit
/// matrix with SDAG' (an *edge* relation) to seed P (line 3) and
/// derives roots from SDAG' columns (line 4). Both steps drop the
/// query subject itself — it never appears in SDAG's subject column
/// because it is the sole sink — and break entirely when the subject
/// has no ancestors (SDAG' has no tuples). We seed from the *node set*
/// of the sub-hierarchy instead (ancestors(s), which includes s by the
/// paper's own definition), matching the worked examples: Fig. 5's
/// line-6 filter σ subject≠s only makes sense if P can contain
/// distance-0 tuples of s.

/// Builds the SDAG relation ⟨subject:str, child:str⟩ from `dag`.
relalg::Relation BuildSdagRelation(const graph::Dag& dag);

/// Builds the EACM relation ⟨subject:str, object:str, right:str,
/// mode:str⟩ from `eacm` with subject names from `dag`.
relalg::Relation BuildEacmRelation(const acm::ExplicitAcm& eacm,
                                   const graph::Dag& dag);

/// The ancestors of `subject` (including itself), as a ⟨subject:str⟩
/// set relation, computed by a relational fixpoint over `sdag`.
StatusOr<relalg::Relation> AncestorsRelalg(const relalg::Relation& sdag,
                                           std::string_view subject);

/// Function Propagate() (Fig. 5): the `allRights` relation
/// ⟨subject, object, right, dis:int, mode⟩ of `subject` for
/// (object, right) — σ subject=s of the full propagation relation P.
StatusOr<relalg::Relation> PropagateRelalg(const relalg::Relation& sdag,
                                           const relalg::Relation& eacm,
                                           std::string_view subject,
                                           std::string_view object,
                                           std::string_view right);

/// Fig. 5 without the final selection: the entire relation P
/// (the paper's Table 4).
StatusOr<relalg::Relation> PropagateRelalgFullP(const relalg::Relation& sdag,
                                                const relalg::Relation& eacm,
                                                std::string_view subject,
                                                std::string_view object,
                                                std::string_view right);

/// Algorithm Resolve() (Fig. 4) lines 2–9 on an `allRights` relation.
StatusOr<acm::Mode> ResolveRelalg(const relalg::Relation& all_rights,
                                  const Strategy& strategy,
                                  ResolveTrace* trace = nullptr);

/// End-to-end: build relations, propagate, resolve — the whole paper
/// pipeline on the relational engine.
StatusOr<acm::Mode> ResolveAccessRelalg(const graph::Dag& dag,
                                        const acm::ExplicitAcm& eacm,
                                        graph::NodeId subject,
                                        acm::ObjectId object,
                                        acm::RightId right,
                                        const Strategy& strategy,
                                        ResolveTrace* trace = nullptr);

/// Converts an `allRights` relation into the native bag representation
/// (for differential tests against the native engines).
StatusOr<RightsBag> RelationToRightsBag(const relalg::Relation& all_rights);

}  // namespace ucr::core

#endif  // UCR_CORE_RELALG_IMPL_H_
