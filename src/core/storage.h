#ifndef UCR_CORE_STORAGE_H_
#define UCR_CORE_STORAGE_H_

#include <string>
#include <string_view>

#include "core/system.h"
#include "util/status.h"

namespace ucr::core {

/// \file
/// Whole-system persistence. The paper's §2 observes that practical
/// systems "store the explicit matrix and compute access control
/// authorizations as needed"; this module stores exactly that — the
/// hierarchy, the explicit matrix, and the configured strategy — in
/// one human-diffable text file:
///
///     # ucr system v1
///     strategy D+LP-
///     [hierarchy]
///     node S1
///     edge S1 S3
///     ...
///     [authorizations]
///     auth S2 obj read +
///     ...
///
/// Round-tripping is exact: node ids, object/right interning order,
/// and every effective decision are preserved (tested). The effective
/// matrix is deliberately NOT stored — it is derived state, and the
/// whole point of the unified algorithm is that it can be re-derived
/// under any strategy.

/// Serializes `system` (hierarchy + explicit matrix + strategy).
std::string SaveSystemToText(const AccessControlSystem& system);

/// Parses the `SaveSystemToText` format. The returned system has cold
/// caches and the options given in `options`, except the strategy,
/// which comes from the file.
StatusOr<AccessControlSystem> LoadSystemFromText(std::string_view text,
                                                 SystemOptions options = {});

/// Convenience wrappers over files.
Status SaveSystemToFile(const AccessControlSystem& system,
                        const std::string& path);
StatusOr<AccessControlSystem> LoadSystemFromFile(const std::string& path,
                                                 SystemOptions options = {});

}  // namespace ucr::core

#endif  // UCR_CORE_STORAGE_H_
