#include "core/cache.h"

#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace ucr::core {

namespace internal {

CacheMetrics& GetCacheMetrics() {
  static CacheMetrics* metrics = new CacheMetrics();
  return *metrics;
}

void AuditCacheClear(const char* which, uint64_t dropped) {
  if (!obs::AuditLog::Enabled()) return;
  obs::AuditEvent event;
  event.type = obs::AuditEventType::kCacheClear;
  event.value = dropped;
  event.SetDetail(which);
  obs::AuditLog::Global().Emit(event);
}

}  // namespace internal

std::optional<acm::Mode> ResolutionCache::Lookup(graph::NodeId subject,
                                                 acm::ObjectId object,
                                                 acm::RightId right,
                                                 const Strategy& strategy,
                                                 uint64_t epoch) {
  // Cache-probe phase attribution (DESIGN.md §14): armed only inside
  // a sampled query's collection scope.
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  auto it = entries_.find(Key(subject, object, right, strategy));
  if (it == entries_.end()) {
    ++stats_.misses;
    m.resolution_misses.Inc();
    return std::nullopt;
  }
  if (it->second.epoch != epoch) {
    // Stale: the explicit matrix changed since this was derived.
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    m.resolution_invalidations.Inc();
    m.resolution_misses.Inc();
    return std::nullopt;
  }
  ++stats_.hits;
  m.resolution_hits.Inc();
  return it->second.mode;
}

void ResolutionCache::Store(graph::NodeId subject, acm::ObjectId object,
                            acm::RightId right, const Strategy& strategy,
                            uint64_t epoch, acm::Mode mode) {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  entries_[Key(subject, object, right, strategy)] = Entry{epoch, mode};
}

void ResolutionCache::Clear() {
  const uint64_t dropped = entries_.size();
  internal::GetCacheMetrics().resolution_evictions.Inc(dropped);
  entries_.clear();
  // Rate stats reset so a cleared cache reports hit rates like a fresh
  // one (the PR-1 stats-leak class); the eviction count is a drop
  // tally, not a rate, and accumulates for the instance lifetime.
  const uint64_t evictions = stats_.evictions + dropped;
  stats_ = Stats{};
  stats_.evictions = evictions;
  internal::AuditCacheClear("resolution", dropped);
}

size_t ResolutionCache::EraseSubjects(const std::vector<uint8_t>& affected) {
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const auto subject = static_cast<size_t>(it->first.triple >> 32);
    if (subject < affected.size() && affected[subject] != 0) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  internal::GetCacheMetrics().resolution_invalidations.Inc(dropped);
  return dropped;
}

const graph::AncestorSubgraph& SubgraphCache::Get(const graph::Dag& dag,
                                                  graph::NodeId subject) {
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  {
    // Probe only: a miss falls through to extraction, which attributes
    // to the extract phase inside the AncestorSubgraph constructor.
    obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
    auto it = subgraphs_.find(subject);
    if (it != subgraphs_.end()) {
      ++hits_;
      m.subgraph_hits.Inc();
      return *it->second;
    }
  }
  ++misses_;
  m.subgraph_misses.Inc();
  auto sub = std::make_unique<graph::AncestorSubgraph>(dag, subject);
  const graph::AncestorSubgraph& ref = *sub;
  subgraphs_.emplace(subject, std::move(sub));
  return ref;
}

size_t SubgraphCache::EraseSubjects(const std::vector<uint8_t>& affected) {
  size_t dropped = 0;
  for (auto it = subgraphs_.begin(); it != subgraphs_.end();) {
    if (it->first < affected.size() && affected[it->first] != 0) {
      it = subgraphs_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  internal::GetCacheMetrics().subgraph_invalidations.Inc(dropped);
  return dropped;
}

void SubgraphCache::Clear() {
  const uint64_t dropped = subgraphs_.size();
  internal::GetCacheMetrics().subgraph_evictions.Inc(dropped);
  subgraphs_.clear();
  hits_ = 0;
  misses_ = 0;
  internal::AuditCacheClear("subgraph", dropped);
}

}  // namespace ucr::core
