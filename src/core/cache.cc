#include "core/cache.h"

namespace ucr::core {

std::optional<acm::Mode> ResolutionCache::Lookup(graph::NodeId subject,
                                                 acm::ObjectId object,
                                                 acm::RightId right,
                                                 const Strategy& strategy,
                                                 uint64_t epoch) {
  auto it = entries_.find(Key(subject, object, right, strategy));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.epoch != epoch) {
    // Stale: the explicit matrix changed since this was derived.
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second.mode;
}

void ResolutionCache::Store(graph::NodeId subject, acm::ObjectId object,
                            acm::RightId right, const Strategy& strategy,
                            uint64_t epoch, acm::Mode mode) {
  entries_[Key(subject, object, right, strategy)] = Entry{epoch, mode};
}

void ResolutionCache::Clear() { entries_.clear(); }

const graph::AncestorSubgraph& SubgraphCache::Get(const graph::Dag& dag,
                                                  graph::NodeId subject) {
  auto it = subgraphs_.find(subject);
  if (it != subgraphs_.end()) {
    ++hits_;
    return *it->second;
  }
  ++misses_;
  auto sub = std::make_unique<graph::AncestorSubgraph>(dag, subject);
  const graph::AncestorSubgraph& ref = *sub;
  subgraphs_.emplace(subject, std::move(sub));
  return ref;
}

}  // namespace ucr::core
