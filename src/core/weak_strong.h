#ifndef UCR_CORE_WEAK_STRONG_H_
#define UCR_CORE_WEAK_STRONG_H_

#include <vector>

#include "acm/mode.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// \file
/// Emulation of Bertino et al.'s weak/strong authorization model [1],
/// the related-work system the paper's §5 singles out: "They also
/// introduce the concept of weak and strong authorizations, which is
/// equivalent to using our combined strategy instance D+LP-."
///
/// Model, as adapted to subject hierarchies:
///  * A *strong* authorization cannot be overridden: it applies to the
///    subject and all its members unconditionally. Two strong
///    authorizations of opposite mode must never both reach a subject
///    (the model requires strong consistency; we surface a violation
///    as FailedPrecondition at decision time).
///  * A *weak* authorization can be overridden by a more specific weak
///    authorization; ties among equally specific weak authorizations
///    resolve to denial; with no reachable authorization at all the
///    system is open (default positive).
///
/// The adapter resolves the strong layer first and falls back to the
/// weak layer evaluated with this library's unified algorithm — and
/// the test suite *verifies the paper's §5 equivalence claim*: with no
/// strong authorizations, `WeakStrongDecide` agrees with
/// `Resolve(D+LP-)` on randomized hierarchies.

/// One weak or strong authorization on a subject (for an implicit
/// object/right pair — the model is evaluated per column).
struct WeakStrongAuthorization {
  graph::NodeId subject = 0;
  acm::Mode mode = acm::Mode::kPositive;
  bool strong = false;
};

/// \brief Derives the effective decision for `subject` under the
/// weak/strong model.
///
/// Fails with FailedPrecondition if conflicting strong authorizations
/// reach the subject, with InvalidArgument on duplicate-subject
/// authorizations in one layer, and with OutOfRange on unknown ids.
StatusOr<acm::Mode> WeakStrongDecide(
    const graph::Dag& dag,
    const std::vector<WeakStrongAuthorization>& authorizations,
    graph::NodeId subject);

}  // namespace ucr::core

#endif  // UCR_CORE_WEAK_STRONG_H_
