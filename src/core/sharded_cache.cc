#include "core/sharded_cache.h"

#include "core/flat_propagate.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace ucr::core {

std::optional<acm::Mode> ShardedResolutionCache::Lookup(
    graph::NodeId subject, acm::ObjectId object, acm::RightId right,
    const Strategy& strategy, uint64_t epoch) {
  // Cache-probe phase attribution (DESIGN.md §14): the wait for the
  // shard lock is part of the probe cost a query pays, so the timer
  // opens before the lock. Armed only for sampled queries.
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  const CacheKey key = Key(subject, object, right, strategy);
  Shard& shard = ShardFor(key);
  // Reader-path lock: recorded under ucr_lock_* so bench/read_churn
  // can contrast this path's contention against the lock-free
  // snapshot path (DESIGN.md §11).
  obs::ScopedMetricsLock lock(shard.mu, obs::GetLockWaitMetrics());
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    m.resolution_misses.Inc();
    return std::nullopt;
  }
  if (it->second.epoch != epoch) {
    // Stale: the explicit matrix changed since this was derived.
    shard.entries.erase(it);
    ++shard.stats.invalidations;
    ++shard.stats.misses;
    m.resolution_invalidations.Inc();
    m.resolution_misses.Inc();
    return std::nullopt;
  }
  ++shard.stats.hits;
  m.resolution_hits.Inc();
  return it->second.mode;
}

void ShardedResolutionCache::Store(graph::NodeId subject, acm::ObjectId object,
                                   acm::RightId right,
                                   const Strategy& strategy, uint64_t epoch,
                                   acm::Mode mode) {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  const CacheKey key = Key(subject, object, right, strategy);
  Shard& shard = ShardFor(key);
  obs::ScopedMetricsLock lock(shard.mu, obs::GetLockWaitMetrics());
  shard.entries[key] = Entry{epoch, mode};
}

void ShardedResolutionCache::Clear() {
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  uint64_t total_dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint64_t dropped = shard.entries.size();
    total_dropped += dropped;
    m.resolution_evictions.Inc(dropped);
    shard.entries.clear();
    // Rate stats reset (the PR-1 stats-leak class); the eviction tally
    // accumulates, mirroring the serial ResolutionCache.
    const uint64_t evictions = shard.stats.evictions + dropped;
    shard.stats = ResolutionCache::Stats{};
    shard.stats.evictions = evictions;
  }
  internal::AuditCacheClear("sharded_resolution", total_dropped);
}

size_t ShardedResolutionCache::EraseSubjects(
    const std::vector<uint8_t>& affected) {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      const auto subject = static_cast<size_t>(it->first.triple >> 32);
      if (subject < affected.size() && affected[subject] != 0) {
        it = shard.entries.erase(it);
        ++shard.stats.invalidations;
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  internal::GetCacheMetrics().resolution_invalidations.Inc(dropped);
  return dropped;
}

size_t ShardedResolutionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

ResolutionCache::Stats ShardedResolutionCache::stats() const {
  ResolutionCache::Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.invalidations += shard.stats.invalidations;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

const graph::AncestorSubgraph& ShardedSubgraphCache::Get(
    const graph::Dag& dag, graph::NodeId subject, bool* hit) {
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  Shard& shard = shards_[subject & (kShardCount - 1)];
  obs::ScopedMetricsLock lock(shard.mu, obs::GetLockWaitMetrics());
  {
    // Probe only: a miss falls through to extraction, which the
    // AncestorSubgraph constructor attributes to the extract phase.
    obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
    auto it = shard.subgraphs.find(subject);
    if (it != shard.subgraphs.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      m.subgraph_hits.Inc();
      if (hit != nullptr) *hit = true;
      return *it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  m.subgraph_misses.Inc();
  if (hit != nullptr) *hit = false;
  // Extract through the caller's warm per-thread arena: the shard lock
  // is held, but the arena is thread-private, so this is race-free.
  auto sub = std::make_unique<graph::AncestorSubgraph>(
      dag, subject, HotPath::ThreadLocal().scratch);
  const graph::AncestorSubgraph& ref = *sub;
  shard.subgraphs.emplace(subject, std::move(sub));
  return ref;
}

void ShardedSubgraphCache::Clear() {
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  uint64_t total_dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint64_t dropped = shard.subgraphs.size();
    total_dropped += dropped;
    m.subgraph_evictions.Inc(dropped);
    shard.subgraphs.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  internal::AuditCacheClear("sharded_subgraph", total_dropped);
}

size_t ShardedSubgraphCache::EraseSubjects(
    const std::vector<uint8_t>& affected) {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.subgraphs.begin(); it != shard.subgraphs.end();) {
      if (it->first < affected.size() && affected[it->first] != 0) {
        it = shard.subgraphs.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  internal::GetCacheMetrics().subgraph_invalidations.Inc(dropped);
  return dropped;
}

size_t ShardedSubgraphCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.subgraphs.size();
  }
  return total;
}

}  // namespace ucr::core
