#ifndef UCR_CORE_EFFECTIVE_MATRIX_H_
#define UCR_CORE_EFFECTIVE_MATRIX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/propagate.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// \brief A fully materialized effective access control matrix for one
/// strategy — the design point of Jajodia et al. the paper's §5
/// argues against, built here so the trade-off can be measured
/// (bench/ablation_materialization) rather than asserted.
///
/// The matrix stores one bit-packed column (a derived mode for *every*
/// subject) per (object, right) pair that carries at least one
/// explicit authorization, plus a single default decision for columns
/// with none. Lookups are O(1); the cost is the build time, the
/// storage (subjects x referenced columns bits), and the §5 problem:
/// it is "not self-maintainable with respect to updating the explicit
/// authorizations" — any EACM change invalidates it wholesale, which
/// `is_current()` tracks via the epoch.
class EffectiveMatrix {
 public:
  /// Materializes every explicitly-referenced column of `system`'s
  /// matrix under `strategy`.
  ///
  /// `threads` > 1 derives columns in parallel on a fixed pool:
  /// columns are independent given the immutable hierarchy and a
  /// read-only view of the explicit matrix (each needs one
  /// whole-graph propagation plus a resolve pass), so the build
  /// scales near-linearly. The result is bit-identical to the serial
  /// build — both paths run the same per-column derivation.
  static StatusOr<EffectiveMatrix> Materialize(
      const AccessControlSystem& system, const Strategy& strategy,
      size_t threads = 1);

  /// \brief Materializes from an epoch-published snapshot (DESIGN.md
  /// §11) instead of the live system: the build reads only the
  /// snapshot's immutable hierarchy and matrix, so it can run
  /// concurrently with mutators — the live system keeps publishing new
  /// epochs while the matrix derives against the pinned one. The
  /// caller must hold a `SnapshotManager::ReadPin` on `snapshot` for
  /// the duration of the call. `IsCurrentFor` afterwards reports
  /// whether the *live* system has moved past the snapshot's epoch.
  static StatusOr<EffectiveMatrix> Materialize(
      const HierarchySnapshot& snapshot, const Strategy& strategy,
      size_t threads = 1);

  /// The derived mode for the triple. O(1). Triples of objects/rights
  /// that existed at materialization time but carry no explicit
  /// authorization resolve to the strategy's uniform default decision.
  /// Fails on ids unknown at materialization time.
  StatusOr<acm::Mode> Lookup(graph::NodeId subject, acm::ObjectId object,
                             acm::RightId right) const;

  /// True while the source system's explicit matrix *and* hierarchy
  /// are unchanged since (re)materialization.
  bool IsCurrentFor(const AccessControlSystem& system) const {
    return epoch_ == system.eacm().epoch() &&
           dag_generation_ == system.dag().generation();
  }

  /// \brief Incremental maintenance along both mutation axes.
  ///
  /// Rights edits: re-derives only the columns whose explicit
  /// authorizations changed since materialization (tracked by
  /// per-column epochs). This is the constructive answer to §5's
  /// criticism of materialized effective matrices ("not
  /// self-maintainable ... even a slight update could trigger a
  /// drastic modification"): because an explicit change to one
  /// (object, right) column can only affect that column's derived
  /// decisions, maintenance is one whole-graph propagation per
  /// *touched* column, not a full rebuild.
  ///
  /// Hierarchy edits: re-derives only the *affected rows* — subjects
  /// whose generation stamp (graph::Dag::node_generation) moved past
  /// the generation captured at materialization, i.e. exactly those
  /// whose ancestor sub-graph a membership edit could change
  /// (DESIGN.md §10). Unaffected rows of up-to-date columns are left
  /// untouched. New subjects (the hierarchy only grows) extend every
  /// column and are derived as affected rows.
  ///
  /// Returns the number of whole columns rebuilt. `threads`
  /// parallelizes the per-column rebuilds exactly like `Materialize`.
  StatusOr<size_t> Refresh(const AccessControlSystem& system,
                           size_t threads = 1);

  const Strategy& strategy() const { return strategy_; }
  size_t subject_count() const { return subject_count_; }
  size_t column_count() const { return columns_.size(); }

  /// Approximate heap footprint in bytes (the §5 "formidable size").
  size_t MemoryBytes() const;

 private:
  EffectiveMatrix() = default;

  /// One derived column's bit-packed modes plus its source epoch —
  /// computed from const system state only, so derivations of
  /// distinct columns can run concurrently.
  struct ColumnBits {
    std::vector<uint64_t> bits;
    uint64_t epoch = 0;
  };

  /// Shared build core: both Materialize overloads reduce to a
  /// (hierarchy, explicit matrix, propagation mode) triple — the live
  /// system and a pinned snapshot differ only in where that triple
  /// lives and how long it stays valid.
  static StatusOr<EffectiveMatrix> MaterializeFrom(
      const graph::Dag& dag, const acm::ExplicitAcm& eacm,
      PropagationMode mode, const Strategy& strategy, size_t threads);

  /// Derives one column (stage the sparse column → flat whole-graph
  /// propagation → streaming-resolve each subject's bag) on the
  /// calling thread's hot-path kernel. `topo` is the hierarchy's
  /// topological order, computed once per rebuild and shared by every
  /// column. Reads only const inputs.
  ColumnBits ComputeColumn(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                           PropagationMode mode, uint32_t key,
                           std::span<const graph::NodeId> topo) const;

  /// (Re)derives `keys` — serially, or on `threads` executors when
  /// threads > 1 — and installs the results.
  void RebuildColumns(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                      PropagationMode mode, const std::vector<uint32_t>& keys,
                      size_t threads);

  /// Re-derives the decision of each subject in `rows` for each column
  /// in `keys` (columns whose epoch is otherwise current), via one
  /// ancestor-sub-graph extraction per row shared across the keys.
  void RefreshRows(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                   PropagationMode mode,
                   const std::vector<graph::NodeId>& rows,
                   const std::vector<uint32_t>& keys);

  static uint32_t ColumnKey(acm::ObjectId object, acm::RightId right) {
    return (static_cast<uint32_t>(object) << 16) |
           static_cast<uint32_t>(right);
  }

  Strategy strategy_;
  uint64_t epoch_ = 0;
  /// Hierarchy generation at (re)materialization: Refresh re-derives
  /// exactly the rows whose node stamp moved past it.
  uint64_t dag_generation_ = 0;
  size_t subject_count_ = 0;
  size_t object_count_ = 0;
  size_t right_count_ = 0;
  /// The decision every empty column resolves to (strategy-uniform:
  /// with no labels anywhere, every subject gets default/preference).
  acm::Mode empty_column_mode_ = acm::Mode::kNegative;
  /// Bit-packed columns: bit v set = subject v granted.
  std::unordered_map<uint32_t, std::vector<uint64_t>> columns_;
  /// Column epoch at (re)materialization time, for Refresh().
  std::unordered_map<uint32_t, uint64_t> column_epochs_;
};

}  // namespace ucr::core

#endif  // UCR_CORE_EFFECTIVE_MATRIX_H_
