#include "core/flat_propagate.h"

namespace ucr::core {

void FlatPropagator::SetLabels(
    std::span<const acm::ExplicitAcm::ColumnEntry> column, size_t node_count) {
  if (label_stamp_.size() < node_count) {
    label_stamp_.resize(node_count, 0);
    label_mode_.resize(node_count, acm::Mode::kNegative);
  }
  ++label_epoch_;
  for (const acm::ExplicitAcm::ColumnEntry& e : column) {
    if (e.subject < node_count) {
      label_stamp_[e.subject] = label_epoch_;
      label_mode_[e.subject] = e.mode;
    }
  }
}

void FlatPropagator::NormalizeMerge() {
  std::sort(merge_.begin(), merge_.end(),
            [](const RightsEntry& a, const RightsEntry& b) {
              if (a.dis != b.dis) return a.dis < b.dis;
              return a.mode < b.mode;
            });
  size_t out = 0;
  for (size_t i = 0; i < merge_.size(); ++i) {
    if (out > 0 && merge_[out - 1].dis == merge_[i].dis &&
        merge_[out - 1].mode == merge_[i].mode) {
      merge_[out - 1].multiplicity =
          SatAdd(merge_[out - 1].multiplicity, merge_[i].multiplicity);
    } else {
      merge_[out++] = merge_[i];
    }
  }
  merge_.resize(out);
}

std::span<const RightsEntry> FlatPropagator::MaterializeBag(
    graph::LocalId v) {
  out_.clear();
  for (size_t i = bag_begin_[v]; i < bag_end_[v]; ++i) {
    out_.push_back(RightsEntry{pool_dis_[i], pool_mode_[i], pool_mult_[i]});
  }
  return {out_.data(), out_.size()};
}

HotPath& HotPath::ThreadLocal() {
  thread_local HotPath instance;
  return instance;
}

}  // namespace ucr::core
