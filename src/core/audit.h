#ifndef UCR_CORE_AUDIT_H_
#define UCR_CORE_AUDIT_H_

#include <string>
#include <vector>

#include "acm/acm.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// \file
/// Strategy-migration analysis. The paper's pitch is that an
/// enterprise can switch conflict-resolution strategies without
/// reinstalling its access control system; the responsible way to do
/// that is to diff the *effective* matrix first. This module computes
/// that diff.

/// One subject whose effective decision changes in a migration.
struct MigrationDelta {
  graph::NodeId subject = 0;
  acm::Mode before = acm::Mode::kNegative;
  acm::Mode after = acm::Mode::kNegative;
};

/// Effective-matrix diff of one (object, right) column between two
/// strategies.
struct MigrationReport {
  Strategy from;
  Strategy to;
  acm::ObjectId object = 0;
  acm::RightId right = 0;
  size_t subjects_audited = 0;
  size_t granted_before = 0;
  size_t granted_after = 0;
  /// Subjects that gain access in the migration (denied -> granted).
  std::vector<MigrationDelta> gained;
  /// Subjects that lose access (granted -> denied).
  std::vector<MigrationDelta> lost;

  size_t changed() const { return gained.size() + lost.size(); }

  /// Renders a short human-readable summary; subject names resolved
  /// against `dag`, listing at most `sample` names per direction.
  std::string Summarize(const graph::Dag& dag, size_t sample = 5) const;
};

/// Options for `CompareStrategies`.
struct CompareOptions {
  /// Restrict the audit to sink subjects (individuals).
  bool sinks_only = true;
};

/// \brief Diffs the effective column of (object, right) between
/// `from` and `to`. Two whole-hierarchy propagations — no per-subject
/// extraction.
StatusOr<MigrationReport> CompareStrategies(AccessControlSystem& system,
                                            acm::ObjectId object,
                                            acm::RightId right,
                                            const Strategy& from,
                                            const Strategy& to,
                                            const CompareOptions& options = {});

/// \brief Ranks all 48 strategies by how many subjects the column
/// grants, relative to `baseline` — a quick map of the policy space
/// ("how permissive is each strategy for this object?").
struct StrategyPermissiveness {
  Strategy strategy;
  size_t granted = 0;
};
StatusOr<std::vector<StrategyPermissiveness>> RankStrategies(
    AccessControlSystem& system, acm::ObjectId object, acm::RightId right,
    const CompareOptions& options = {});

}  // namespace ucr::core

#endif  // UCR_CORE_AUDIT_H_
