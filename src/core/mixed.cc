#include "core/mixed.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/ancestor_subgraph.h"

namespace ucr::core {

namespace {

using acm::Mode;
using acm::PropagatedMode;
using graph::AncestorSubgraph;
using graph::LocalId;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

uint64_t CountProfileEntries(const std::vector<std::vector<uint64_t>>& prof) {
  uint64_t total = 0;
  for (const auto& p : prof) total += p.size();
  return total;
}

uint64_t PairKey(LocalId subject, LocalId object) {
  return (static_cast<uint64_t>(subject) << 32) | object;
}

/// Adds the convolution of two distance profiles to `bag` under `mode`.
void Convolve(const std::vector<uint64_t>& subject_profile,
              const std::vector<uint64_t>& object_profile,
              PropagatedMode mode, RightsBag* bag, uint64_t* tuples) {
  for (size_t i = 0; i < subject_profile.size(); ++i) {
    if (subject_profile[i] == 0) continue;
    for (size_t j = 0; j < object_profile.size(); ++j) {
      if (object_profile[j] == 0) continue;
      bag->Add(static_cast<uint32_t>(i + j), mode,
               SatMul(subject_profile[i], object_profile[j]));
      if (tuples != nullptr) ++*tuples;
    }
  }
}

}  // namespace

std::vector<uint64_t> DistanceProfile(const graph::Dag& dag,
                                      graph::NodeId source,
                                      graph::NodeId sink) {
  if (source >= dag.node_count() || sink >= dag.node_count()) return {};
  const AncestorSubgraph sub(dag, sink);
  const LocalId local = sub.ToLocal(source);
  if (local == graph::kInvalidNode) return {};
  return AllDistanceProfiles(sub)[local];
}

std::vector<std::vector<uint64_t>> AllDistanceProfiles(
    const AncestorSubgraph& sub) {
  // result[v][L] = number of length-L paths from v to the sink
  // (saturating counts), in reverse topological order so children are
  // final before their parents.
  const size_t n = sub.member_count();
  std::vector<std::vector<uint64_t>> prof(n);
  prof[sub.sink()] = {1};  // One empty path of length 0.
  const auto topo = sub.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const LocalId v = *it;
    if (v == sub.sink()) continue;
    std::vector<uint64_t>& out = prof[v];
    out.assign(sub.longest_distance_to_sink(v) + 1, 0);
    for (LocalId c : sub.children(v)) {
      const std::vector<uint64_t>& child = prof[c];
      for (size_t len = 0; len < child.size(); ++len) {
        if (child[len] == 0) continue;
        out[len + 1] = SatAdd(out[len + 1], child[len]);
      }
    }
  }
  return prof;
}

StatusOr<RightsBag> MixedPropagate(
    const graph::Dag& subject_dag, const graph::Dag& object_dag,
    const std::vector<MixedAuthorization>& authorizations,
    graph::NodeId subject, graph::NodeId object,
    MixedPropagateStats* stats) {
  if (subject >= subject_dag.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= object_dag.node_count()) {
    return Status::OutOfRange("object id out of range");
  }

  const AncestorSubgraph sub_s(subject_dag, subject);
  const AncestorSubgraph sub_o(object_dag, object);
  const std::vector<std::vector<uint64_t>> prof_s = AllDistanceProfiles(sub_s);
  const std::vector<std::vector<uint64_t>> prof_o = AllDistanceProfiles(sub_o);
  if (stats != nullptr) {
    *stats = MixedPropagateStats{};
    stats->profile_entries =
        CountProfileEntries(prof_s) + CountProfileEntries(prof_o);
  }

  RightsBag bag;
  // Explicit authorizations whose pair reaches ⟨subject, object⟩.
  // Track labeled pairs so the default rule can skip them, and reject
  // contradictions (the paper's at-most-one-authorization-per-triple
  // assumption, lifted to pairs).
  std::unordered_map<uint64_t, Mode> labeled_pairs;
  for (const MixedAuthorization& auth : authorizations) {
    if (auth.subject >= subject_dag.node_count() ||
        auth.object >= object_dag.node_count()) {
      return Status::OutOfRange("authorization references unknown node");
    }
    const LocalId ls = sub_s.ToLocal(auth.subject);
    const LocalId lo = sub_o.ToLocal(auth.object);
    if (ls == graph::kInvalidNode || lo == graph::kInvalidNode) {
      continue;  // Does not reach this pair; irrelevant to the query.
    }
    auto [it, inserted] =
        labeled_pairs.try_emplace(PairKey(ls, lo), auth.mode);
    if (!inserted) {
      if (it->second == auth.mode) continue;  // Duplicate: idempotent.
      return Status::FailedPrecondition(
          "contradicting explicit authorizations on one "
          "(subject, object) pair");
    }
    Convolve(prof_s[ls], prof_o[lo], acm::ToPropagated(auth.mode), &bag,
             stats != nullptr ? &stats->pair_tuples : nullptr);
  }

  // Step 2, lifted: the 'd' marker sits on unlabeled
  // ⟨subject-root, object-root⟩ pairs.
  for (LocalId rs : sub_s.roots()) {
    for (LocalId ro : sub_o.roots()) {
      if (labeled_pairs.contains(PairKey(rs, ro))) continue;
      Convolve(prof_s[rs], prof_o[ro], PropagatedMode::kDefault, &bag,
               stats != nullptr ? &stats->pair_tuples : nullptr);
    }
  }

  bag.Normalize();
  return bag;
}

StatusOr<acm::Mode> MixedResolveAccess(
    const graph::Dag& subject_dag, const graph::Dag& object_dag,
    const std::vector<MixedAuthorization>& authorizations,
    graph::NodeId subject, graph::NodeId object, const Strategy& strategy,
    ResolveTrace* trace) {
  UCR_ASSIGN_OR_RETURN(const RightsBag bag,
                       MixedPropagate(subject_dag, object_dag, authorizations,
                                      subject, object));
  return Resolve(bag, strategy, trace);
}

}  // namespace ucr::core
