#include "core/constraints.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace ucr::core {

namespace {

uint32_t PermissionKey(const Permission& p) {
  return (static_cast<uint32_t>(p.object) << 16) |
         static_cast<uint32_t>(p.right);
}

}  // namespace

bool ConstraintSet::NameTaken(const std::string& name) const {
  for (const auto& c : sod_) {
    if (c.name == name) return true;
  }
  for (const auto& c : coi_) {
    if (c.name == name) return true;
  }
  return false;
}

Status ConstraintSet::AddSod(SodConstraint constraint) {
  if (constraint.name.empty()) {
    return Status::InvalidArgument("constraint needs a name");
  }
  if (NameTaken(constraint.name)) {
    return Status::AlreadyExists("constraint '" + constraint.name +
                                 "' already defined");
  }
  if (constraint.first == constraint.second) {
    return Status::InvalidArgument(
        "separation of duty needs two distinct permissions");
  }
  sod_.push_back(std::move(constraint));
  return Status::OK();
}

Status ConstraintSet::AddCoi(CoiConstraint constraint) {
  if (constraint.name.empty()) {
    return Status::InvalidArgument("constraint needs a name");
  }
  if (NameTaken(constraint.name)) {
    return Status::AlreadyExists("constraint '" + constraint.name +
                                 "' already defined");
  }
  std::vector<uint32_t> keys;
  for (const Permission& p : constraint.permissions) {
    keys.push_back(PermissionKey(p));
  }
  std::sort(keys.begin(), keys.end());
  if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
    return Status::InvalidArgument(
        "conflict-of-interest class has duplicate permissions");
  }
  if (constraint.permissions.size() < 2) {
    return Status::InvalidArgument(
        "conflict-of-interest class needs at least two permissions");
  }
  if (constraint.max_granted == 0 ||
      constraint.max_granted >= constraint.permissions.size()) {
    return Status::InvalidArgument(
        "max_granted must be in [1, permissions-1]");
  }
  coi_.push_back(std::move(constraint));
  return Status::OK();
}

StatusOr<std::vector<ConstraintViolation>> AuditConstraints(
    AccessControlSystem& system, const ConstraintSet& constraints,
    const Strategy& strategy, const AuditOptions& options) {
  // Materialize each referenced column exactly once.
  std::unordered_map<uint32_t, std::vector<acm::Mode>> columns;
  auto column_of =
      [&](const Permission& p) -> StatusOr<const std::vector<acm::Mode>*> {
    auto it = columns.find(PermissionKey(p));
    if (it == columns.end()) {
      UCR_ASSIGN_OR_RETURN(
          std::vector<acm::Mode> column,
          system.MaterializeEffectiveColumn(p.object, p.right, strategy));
      it = columns.emplace(PermissionKey(p), std::move(column)).first;
    }
    return &it->second;
  };

  const graph::Dag& dag = system.dag();
  auto audited = [&](graph::NodeId v) {
    return !options.sinks_only || dag.is_sink(v);
  };

  std::vector<ConstraintViolation> violations;

  for (const SodConstraint& c : constraints.sod()) {
    UCR_ASSIGN_OR_RETURN(const std::vector<acm::Mode>* first,
                         column_of(c.first));
    UCR_ASSIGN_OR_RETURN(const std::vector<acm::Mode>* second,
                         column_of(c.second));
    for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
      if (!audited(v)) continue;
      if ((*first)[v] == acm::Mode::kPositive &&
          (*second)[v] == acm::Mode::kPositive) {
        violations.push_back(
            ConstraintViolation{c.name, v, {c.first, c.second}});
      }
    }
  }

  for (const CoiConstraint& c : constraints.coi()) {
    std::vector<const std::vector<acm::Mode>*> cols;
    for (const Permission& p : c.permissions) {
      UCR_ASSIGN_OR_RETURN(const std::vector<acm::Mode>* col, column_of(p));
      cols.push_back(col);
    }
    for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
      if (!audited(v)) continue;
      std::vector<Permission> granted;
      for (size_t i = 0; i < cols.size(); ++i) {
        if ((*cols[i])[v] == acm::Mode::kPositive) {
          granted.push_back(c.permissions[i]);
        }
      }
      if (granted.size() > c.max_granted) {
        violations.push_back(
            ConstraintViolation{c.name, v, std::move(granted)});
      }
    }
  }
  return violations;
}

}  // namespace ucr::core
