#include "core/effective_matrix.h"

#include <algorithm>

#include "core/flat_propagate.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/rights_bag.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace ucr::core {

namespace {

/// Materialization telemetry (DESIGN.md §8): build/refresh volume and
/// the per-column derivation cost, which is the §5 trade-off operators
/// need to watch (columns × build time vs on-demand resolution).
struct MatrixMetrics {
  obs::Counter& materializations = obs::Registry::Global().GetCounter(
      "ucr_matrix_materializations_total",
      "Full EffectiveMatrix::Materialize builds");
  obs::Counter& refreshes = obs::Registry::Global().GetCounter(
      "ucr_matrix_refreshes_total", "EffectiveMatrix::Refresh passes");
  obs::Counter& columns_rebuilt = obs::Registry::Global().GetCounter(
      "ucr_matrix_columns_rebuilt_total",
      "Columns derived by Materialize or Refresh");
  obs::Histogram& column_build = obs::Registry::Global().GetHistogram(
      "ucr_matrix_column_build_ns",
      "Per-column derivation time inside RebuildColumns (ns)");
};

MatrixMetrics& GetMatrixMetrics() {
  static MatrixMetrics* metrics = new MatrixMetrics();
  return *metrics;
}

}  // namespace

StatusOr<EffectiveMatrix> EffectiveMatrix::MaterializeFrom(
    const graph::Dag& dag, const acm::ExplicitAcm& eacm, PropagationMode mode,
    const Strategy& strategy, size_t threads) {
  EffectiveMatrix matrix;
  matrix.strategy_ = strategy.Canonical();
  matrix.epoch_ = eacm.epoch();
  matrix.dag_generation_ = dag.generation();
  matrix.subject_count_ = dag.node_count();
  matrix.object_count_ = eacm.object_count();
  matrix.right_count_ = eacm.right_count();

  // A column with no explicit authorization is uniform: every
  // subject's bag holds only 'd' markers, so the default (or, with
  // defaults off, the preference) rule decides identically everywhere.
  RightsBag defaults_only;
  defaults_only.Add(0, acm::PropagatedMode::kDefault, 1);
  defaults_only.Normalize();
  matrix.empty_column_mode_ = Resolve(defaults_only, matrix.strategy_);

  // Sorted vector + dedup instead of a node-per-key std::set: the key
  // count is bounded by the entry count, and one sort of a flat array
  // beats per-insert red-black rebalancing.
  std::vector<uint32_t> referenced;
  referenced.reserve(eacm.size());
  for (const auto& e : eacm.SortedEntries()) {
    referenced.push_back(ColumnKey(e.object, e.right));
  }
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  matrix.RebuildColumns(dag, eacm, mode, referenced, threads);
  if constexpr (obs::kEnabled) GetMatrixMetrics().materializations.Inc();
  return matrix;
}

StatusOr<EffectiveMatrix> EffectiveMatrix::Materialize(
    const AccessControlSystem& system, const Strategy& strategy,
    size_t threads) {
  return MaterializeFrom(system.dag(), system.eacm(),
                         system.propagation_mode(), strategy, threads);
}

StatusOr<EffectiveMatrix> EffectiveMatrix::Materialize(
    const HierarchySnapshot& snapshot, const Strategy& strategy,
    size_t threads) {
  return MaterializeFrom(snapshot.dag, snapshot.eacm,
                         snapshot.propagation_mode, strategy, threads);
}

EffectiveMatrix::ColumnBits EffectiveMatrix::ComputeColumn(
    const graph::Dag& dag, const acm::ExplicitAcm& eacm, PropagationMode mode,
    uint32_t key, std::span<const graph::NodeId> topo) const {
  const auto object = static_cast<acm::ObjectId>(key >> 16);
  const auto right = static_cast<acm::RightId>(key & 0xFFFF);
  PropagateOptions prop_options;
  prop_options.propagation_mode = mode;

  // Flat whole-graph propagation on this thread's hot-path kernel
  // (DESIGN.md §7): the sparse column is staged in O(column size) and
  // all per-subject bags share one pooled buffer, replacing the dense
  // label vector and the vector<RightsBag> of the classic engine.
  HotPath& hot = HotPath::ThreadLocal();
  hot.propagator.SetLabels(eacm.Column(object, right), subject_count_);
  const FlatDagView view{&dag, topo};
  hot.propagator.PropagateAll(view, prop_options);

  ColumnBits column;
  const size_t words = (subject_count_ + 63) / 64;
  column.bits.assign(words, 0);
  for (size_t v = 0; v < subject_count_; ++v) {
    const auto local = static_cast<graph::NodeId>(v);
    if (ResolveEntries(hot.propagator.bag(local), strategy_) ==
        acm::Mode::kPositive) {
      column.bits[v / 64] |= uint64_t{1} << (v % 64);
    }
  }
  column.epoch = eacm.ColumnEpoch(object, right);
  return column;
}

void EffectiveMatrix::RebuildColumns(const graph::Dag& dag,
                                     const acm::ExplicitAcm& eacm,
                                     PropagationMode mode,
                                     const std::vector<uint32_t>& keys,
                                     size_t threads) {
  threads = ThreadPool::ClampToHardware(threads);
  const std::vector<graph::NodeId> topo = dag.TopologicalOrder();
  std::vector<ColumnBits> derived(keys.size());
  // Column derivations are ms-scale, so two clock reads per column are
  // noise; the histogram feeds capacity planning for Refresh cadence.
  const auto timed_compute = [&](size_t i) {
    const uint64_t t0 = obs::NowNs();
    derived[i] = ComputeColumn(dag, eacm, mode, keys[i], topo);
    if constexpr (obs::kEnabled) {
      GetMatrixMetrics().column_build.Observe(obs::NowNs() - t0);
    }
  };
  if (threads <= 1 || keys.size() <= 1) {
    for (size_t i = 0; i < keys.size(); ++i) timed_compute(i);
  } else {
    // Columns share only immutable inputs (the DAG, a read-only
    // explicit matrix, one topological order), so each derivation runs
    // lock-free; the caller counts as one executor, so the pool gets
    // threads - 1 workers.
    ThreadPool pool(threads - 1);
    pool.ParallelFor(0, keys.size(), timed_compute);
  }
  if constexpr (obs::kEnabled) {
    GetMatrixMetrics().columns_rebuilt.Inc(keys.size());
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    columns_[keys[i]] = std::move(derived[i].bits);
    column_epochs_[keys[i]] = derived[i].epoch;
  }
}

void EffectiveMatrix::RefreshRows(const graph::Dag& dag,
                                  const acm::ExplicitAcm& eacm,
                                  PropagationMode mode,
                                  const std::vector<graph::NodeId>& rows,
                                  const std::vector<uint32_t>& keys) {
  PropagateOptions prop_options;
  prop_options.propagation_mode = mode;
  HotPath& hot = HotPath::ThreadLocal();
  for (graph::NodeId v : rows) {
    // One extraction per affected subject, shared across all columns
    // (the sub-graph depends only on the hierarchy); per column the
    // sparse labels are restaged and propagated over the sub-graph —
    // the same derivation CheckAccess runs for one query.
    const auto view = hot.scratch.Extract(dag, v);
    for (uint32_t key : keys) {
      const auto object = static_cast<acm::ObjectId>(key >> 16);
      const auto right = static_cast<acm::RightId>(key & 0xFFFF);
      hot.propagator.SetLabels(eacm.Column(object, right), subject_count_);
      const acm::Mode decision = ResolveEntries(
          hot.propagator.PropagateSink(view, prop_options), strategy_);
      std::vector<uint64_t>& bits = columns_[key];
      const uint64_t mask = uint64_t{1} << (v % 64);
      if (decision == acm::Mode::kPositive) {
        bits[v / 64] |= mask;
      } else {
        bits[v / 64] &= ~mask;
      }
    }
  }
}

StatusOr<size_t> EffectiveMatrix::Refresh(const AccessControlSystem& system,
                                          size_t threads) {
  const size_t node_count = system.dag().node_count();
  if (node_count < subject_count_) {
    return Status::FailedPrecondition(
        "Refresh requires a hierarchy grown from the one the matrix was "
        "built from (subjects are never removed)");
  }
  // Affected rows: subjects whose generation stamp moved past the one
  // captured at materialization — exactly those whose ancestor
  // sub-graph a hierarchy edit could change, plus freshly created
  // subjects (stamped at creation).
  std::vector<graph::NodeId> rows;
  for (graph::NodeId v = 0; v < node_count; ++v) {
    if (v >= subject_count_ ||
        system.dag().node_generation(v) > dag_generation_) {
      rows.push_back(v);
    }
  }
  if (node_count != subject_count_) {
    // The hierarchy grew: extend every column. The new rows are
    // derived below (they are all in `rows`).
    subject_count_ = node_count;
    const size_t words = (node_count + 63) / 64;
    for (auto& [key, bits] : columns_) bits.resize(words, 0);
  }

  // Columns can appear (new authorizations on a fresh object/right) or
  // change; gather every referenced column and compare epochs. Sorted
  // vector + dedup, like Materialize.
  std::vector<uint32_t> referenced;
  referenced.reserve(system.eacm().size() + column_epochs_.size());
  for (const auto& e : system.eacm().SortedEntries()) {
    referenced.push_back(ColumnKey(e.object, e.right));
  }
  for (const auto& [key, epoch] : column_epochs_) referenced.push_back(key);
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());

  std::vector<uint32_t> stale;
  std::vector<uint32_t> current_keys;
  for (uint32_t key : referenced) {
    const auto object = static_cast<acm::ObjectId>(key >> 16);
    const auto right = static_cast<acm::RightId>(key & 0xFFFF);
    const uint64_t current = system.eacm().ColumnEpoch(object, right);
    auto it = column_epochs_.find(key);
    if (it != column_epochs_.end() && it->second == current) {
      current_keys.push_back(key);
      continue;
    }
    stale.push_back(key);
  }
  // Stale columns are rebuilt whole (their epoch lapsed, every row is
  // suspect); epoch-current columns get only the affected rows
  // re-derived.
  if (!stale.empty()) {
    RebuildColumns(system.dag(), system.eacm(), system.propagation_mode(),
                   stale, threads);
  }
  if (!rows.empty() && !current_keys.empty()) {
    RefreshRows(system.dag(), system.eacm(), system.propagation_mode(), rows,
                current_keys);
  }
  if constexpr (obs::kEnabled) GetMatrixMetrics().refreshes.Inc();
  object_count_ = system.eacm().object_count();
  right_count_ = system.eacm().right_count();
  epoch_ = system.eacm().epoch();
  dag_generation_ = system.dag().generation();
  return stale.size();
}

StatusOr<acm::Mode> EffectiveMatrix::Lookup(graph::NodeId subject,
                                            acm::ObjectId object,
                                            acm::RightId right) const {
  if (subject >= subject_count_) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= object_count_ || right >= right_count_) {
    return Status::OutOfRange(
        "object/right unknown at materialization time");
  }
  auto it = columns_.find(ColumnKey(object, right));
  if (it == columns_.end()) return empty_column_mode_;
  const bool granted =
      (it->second[subject / 64] >> (subject % 64)) & uint64_t{1};
  return granted ? acm::Mode::kPositive : acm::Mode::kNegative;
}

size_t EffectiveMatrix::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, bits] : columns_) {
    bytes += sizeof(key) + bits.size() * sizeof(uint64_t) +
             sizeof(std::vector<uint64_t>);
  }
  return bytes;
}

}  // namespace ucr::core
