#include "core/effective_matrix.h"

#include <set>

#include "core/resolve.h"
#include "core/rights_bag.h"

namespace ucr::core {

StatusOr<EffectiveMatrix> EffectiveMatrix::Materialize(
    AccessControlSystem& system, const Strategy& strategy) {
  EffectiveMatrix matrix;
  matrix.strategy_ = strategy.Canonical();
  matrix.epoch_ = system.eacm().epoch();
  matrix.subject_count_ = system.dag().node_count();
  matrix.object_count_ = system.eacm().object_count();
  matrix.right_count_ = system.eacm().right_count();

  // A column with no explicit authorization is uniform: every
  // subject's bag holds only 'd' markers, so the default (or, with
  // defaults off, the preference) rule decides identically everywhere.
  RightsBag defaults_only;
  defaults_only.Add(0, acm::PropagatedMode::kDefault, 1);
  defaults_only.Normalize();
  matrix.empty_column_mode_ = Resolve(defaults_only, matrix.strategy_);

  std::set<uint32_t> referenced;
  for (const auto& e : system.eacm().SortedEntries()) {
    referenced.insert(ColumnKey(e.object, e.right));
  }
  for (uint32_t key : referenced) {
    UCR_RETURN_IF_ERROR(matrix.RebuildColumn(system, key));
  }
  return matrix;
}

Status EffectiveMatrix::RebuildColumn(AccessControlSystem& system,
                                      uint32_t key) {
  const auto object = static_cast<acm::ObjectId>(key >> 16);
  const auto right = static_cast<acm::RightId>(key & 0xFFFF);
  UCR_ASSIGN_OR_RETURN(
      const std::vector<acm::Mode> column,
      system.MaterializeEffectiveColumn(object, right, strategy_));
  const size_t words = (subject_count_ + 63) / 64;
  std::vector<uint64_t> bits(words, 0);
  for (size_t v = 0; v < column.size(); ++v) {
    if (column[v] == acm::Mode::kPositive) {
      bits[v / 64] |= uint64_t{1} << (v % 64);
    }
  }
  columns_[key] = std::move(bits);
  column_epochs_[key] = system.eacm().ColumnEpoch(object, right);
  return Status::OK();
}

StatusOr<size_t> EffectiveMatrix::Refresh(AccessControlSystem& system) {
  if (system.dag().node_count() != subject_count_) {
    return Status::FailedPrecondition(
        "Refresh requires the same hierarchy the matrix was built from");
  }
  // Columns can appear (new authorizations on a fresh object/right) or
  // change; gather every referenced column and compare epochs.
  std::set<uint32_t> referenced;
  for (const auto& e : system.eacm().SortedEntries()) {
    referenced.insert(ColumnKey(e.object, e.right));
  }
  for (const auto& [key, epoch] : column_epochs_) referenced.insert(key);

  size_t refreshed = 0;
  for (uint32_t key : referenced) {
    const auto object = static_cast<acm::ObjectId>(key >> 16);
    const auto right = static_cast<acm::RightId>(key & 0xFFFF);
    const uint64_t current = system.eacm().ColumnEpoch(object, right);
    auto it = column_epochs_.find(key);
    if (it != column_epochs_.end() && it->second == current) continue;
    UCR_RETURN_IF_ERROR(RebuildColumn(system, key));
    ++refreshed;
  }
  object_count_ = system.eacm().object_count();
  right_count_ = system.eacm().right_count();
  epoch_ = system.eacm().epoch();
  return refreshed;
}

StatusOr<acm::Mode> EffectiveMatrix::Lookup(graph::NodeId subject,
                                            acm::ObjectId object,
                                            acm::RightId right) const {
  if (subject >= subject_count_) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= object_count_ || right >= right_count_) {
    return Status::OutOfRange(
        "object/right unknown at materialization time");
  }
  auto it = columns_.find(ColumnKey(object, right));
  if (it == columns_.end()) return empty_column_mode_;
  const bool granted =
      (it->second[subject / 64] >> (subject % 64)) & uint64_t{1};
  return granted ? acm::Mode::kPositive : acm::Mode::kNegative;
}

size_t EffectiveMatrix::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, bits] : columns_) {
    bytes += sizeof(key) + bits.size() * sizeof(uint64_t) +
             sizeof(std::vector<uint64_t>);
  }
  return bytes;
}

}  // namespace ucr::core
