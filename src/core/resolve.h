#ifndef UCR_CORE_RESOLVE_H_
#define UCR_CORE_RESOLVE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/propagate.h"
#include "core/rights_bag.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "graph/reachability.h"
#include "util/status.h"

namespace ucr::core {

/// \brief Execution record of one Resolve() run, mirroring the columns
/// of the paper's Table 3: the majority counters, the Auth set, the
/// derived mode, and which line of Fig. 4 returned.
struct ResolveTrace {
  /// Majority counters (Fig. 4 lines 4–5); unset when mRule = skip.
  std::optional<uint64_t> c1;  ///< count of '+' tuples.
  std::optional<uint64_t> c2;  ///< count of '-' tuples.

  /// Whether the Auth set (Fig. 4 line 7) was computed, and its
  /// contents if so.
  bool auth_computed = false;
  bool auth_has_positive = false;
  bool auth_has_negative = false;

  /// Line of Fig. 4 that produced the result: 6 (majority), 8 (single
  /// surviving authorization), or 9 (preference).
  int returned_line = 0;

  /// The derived effective mode.
  acm::Mode result = acm::Mode::kNegative;

  /// Renders the Table 3 "Auth" cell: "n/a", "+", "-", or "+,-".
  std::string AuthToString() const;
  /// Renders the Table 3 counter cells: "n/a" or the number.
  std::string C1ToString() const;
  std::string C2ToString() const;
};

/// \brief Algorithm Resolve() (paper Fig. 4), steps after propagation:
/// derives the effective mode for a subject whose propagated
/// `allRights` bag is given.
///
/// Deterministic for every canonical strategy; a non-canonical
/// strategy is normalized first. The algorithm never fails: the
/// preference rule resolves every residual case, including an empty
/// bag (a subject with no ancestors, no label, and no default policy).
acm::Mode Resolve(const RightsBag& all_rights, const Strategy& strategy,
                  ResolveTrace* trace = nullptr);

/// \brief Allocation-free variant of `Resolve` over a normalized entry
/// span (e.g. a `FlatPropagator` bag): the default rule, majority
/// counters, locality target, and Auth set are all computed by
/// streaming over the input instead of materializing filtered copies.
///
/// Saturating addition is associative and commutative, so the streamed
/// counters equal the group-merged ones; results and traces are
/// identical to `Resolve` on the equivalent bag (the differential
/// tests assert this for all 48 canonical strategies). `all_rights`
/// must be normalized (sorted by (dis, mode), groups merged) — both
/// propagation engines only produce normalized bags.
acm::Mode ResolveEntries(std::span<const RightsEntry> all_rights,
                         const Strategy& strategy,
                         ResolveTrace* trace = nullptr);

/// Options for the end-to-end `ResolveAccess` entry point.
struct ResolveAccessOptions {
  /// Propagation engine: the aggregated production engine (default) or
  /// the paper-literal tuple queue (for cost-model experiments).
  bool use_literal_engine = false;

  /// Run Steps 1–4 through the per-thread allocation-free hot path
  /// (scratch-arena extraction + flat propagation + streaming resolve;
  /// DESIGN.md §7). Decisions are bit-identical to the classic
  /// engines; disable to force the classic path as a differential
  /// oracle. Ignored when `use_literal_engine` is set.
  bool use_fast_path = true;

  /// Tuple budget for the literal engine (ignored by the aggregated
  /// engine); see `PropagateLiteral`.
  uint64_t literal_max_tuples = UINT64_MAX;

  /// Propagation extension mode (paper future work #3).
  PropagationMode propagation_mode = PropagationMode::kBoth;

  /// Compose the sink bag from the reachability index (DESIGN.md §12)
  /// when a current index is supplied to `ResolveAccess` — O(label)
  /// instead of O(sub-graph) per query. Automatically bypassed (to the
  /// fast path) when the index is stale/not-ready, when `stats` are
  /// requested (they describe the traversal the index skips), or under
  /// `kSecondWins` (whose per-column path gating the class labels
  /// cannot express). Decisions and traces stay bit-identical.
  bool use_reachability_index = true;
};

/// True when `index` can answer for this (hierarchy, matrix, options)
/// state: present, `ready()`, built at exactly `dag.generation()` /
/// `eacm.epoch()` over the same node count, and the propagation mode
/// is index-expressible (`kBoth`/`kFirstWins`).
bool ReachIndexUsable(const graph::ReachabilityIndex* index,
                      const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                      const ResolveAccessOptions& options);

/// \brief Composes `subject`'s normalized propagated `allRights` bag
/// for column (object, right) from the reachability index: each label
/// entry (class, dis, count) contributes (dis, seed-mode-of-class,
/// count), plus the subject's own distance-0 seed. Bit-identical to
/// the propagation engines' sink bag (saturating addition is
/// associative, so regrouping by class does not change multiplicities).
///
/// Requires `ReachIndexUsable`. The returned span aliases thread-local
/// scratch: it is invalidated by the next call on this thread.
std::span<const RightsEntry> ComposeIndexedSinkBag(
    const graph::ReachabilityIndex& index, graph::NodeId subject,
    acm::ObjectId object, acm::RightId right, PropagationMode mode);

/// \brief End-to-end conflict resolution for one ⟨subject, object,
/// right⟩ triple: extracts the subject's ancestor sub-graph (Step 1),
/// propagates labels (Steps 2–3), and resolves (Step 4). When a
/// usable `reach_index` is supplied, Steps 1–3 collapse into an
/// O(label) bag composition (DESIGN.md §12).
///
/// Fails only on invalid ids or a literal-engine tuple-budget breach.
StatusOr<acm::Mode> ResolveAccess(
    const graph::Dag& dag, const acm::ExplicitAcm& eacm,
    graph::NodeId subject, acm::ObjectId object, acm::RightId right,
    const Strategy& strategy, const ResolveAccessOptions& options = {},
    ResolveTrace* trace = nullptr, PropagateStats* stats = nullptr,
    const graph::ReachabilityIndex* reach_index = nullptr);

/// \brief Online shadow-verification oracle (DESIGN.md §9): re-resolves
/// one fast-path decision with the classic engines (ancestor-sub-graph
/// extraction, aggregated propagation, Fig. 4 `Resolve`) and compares
/// decision *and* derivation (c1/c2, Auth set, returned line)
/// bit-for-bit against the fast path's. A divergence is counted
/// (`ucr_shadow_mismatch_total`), retained in the mismatch dump, and
/// emitted as an audit event carrying both derivations.
///
/// Called by `ResolveAccess`/`BatchResolver` for queries selected by
/// `obs::ShadowVerifier::ShouldShadow()`. Cold path; its heap traffic
/// runs under an allocation-exclusion scope, so the hot path's
/// 0-allocs/query bound refers to unshadowed queries.
/// When the shadowed decision came from the reachability index,
/// `indexed_bag_entries` is the composed bag's size; the oracle's
/// extraction then doubles as the `ucr_reach_pruned_nodes` probe (the
/// sub-graph members the index never touched).
void ShadowVerifyDecision(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                          graph::NodeId subject, acm::ObjectId object,
                          acm::RightId right, const Strategy& canonical,
                          const PropagateOptions& prop_options,
                          acm::Mode fast_mode, const ResolveTrace& fast_trace,
                          size_t indexed_bag_entries = SIZE_MAX);

}  // namespace ucr::core

#endif  // UCR_CORE_RESOLVE_H_
