#include "core/storage.h"

#include <fstream>
#include <sstream>

#include "acm/acm.h"
#include "graph/io.h"
#include "util/fs.h"
#include "util/string_util.h"

namespace ucr::core {

namespace {

constexpr std::string_view kHeader = "# ucr system v1";
constexpr std::string_view kHierarchySection = "[hierarchy]";
constexpr std::string_view kAuthSection = "[authorizations]";

}  // namespace

std::string SaveSystemToText(const AccessControlSystem& system) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "strategy " << system.strategy().ToMnemonic() << "\n";
  out << kHierarchySection << "\n";
  out << graph::ToEdgeListText(system.dag());
  out << kAuthSection << "\n";
  out << acm::ToText(system.eacm(), system.dag());
  return out.str();
}

StatusOr<AccessControlSystem> LoadSystemFromText(std::string_view text,
                                                 SystemOptions options) {
  // Split the stream into the strategy line and the two sections;
  // section bodies are parsed by their own modules.
  std::optional<Strategy> strategy;
  std::string hierarchy_text;
  std::string auth_text;
  enum class Section { kPreamble, kHierarchy, kAuthorizations };
  Section section = Section::kPreamble;

  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view raw = text.substr(pos, end - pos);
    const std::string_view line = Trim(raw);
    pos = end + 1;
    ++line_no;

    auto error = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (line == kHierarchySection) {
      section = Section::kHierarchy;
      continue;
    }
    if (line == kAuthSection) {
      if (section != Section::kHierarchy) {
        return error("[authorizations] must follow [hierarchy]");
      }
      section = Section::kAuthorizations;
      continue;
    }
    switch (section) {
      case Section::kPreamble: {
        if (line.empty() || line[0] == '#') break;
        if (StartsWith(line, "strategy ")) {
          auto parsed = ParseStrategy(Trim(line.substr(9)));
          if (!parsed.ok()) return error(parsed.status().message());
          strategy = *parsed;
          break;
        }
        return error("unexpected content before [hierarchy]");
      }
      case Section::kHierarchy:
        hierarchy_text.append(raw);
        hierarchy_text.push_back('\n');
        break;
      case Section::kAuthorizations:
        auth_text.append(raw);
        auth_text.push_back('\n');
        break;
    }
  }
  if (section != Section::kAuthorizations) {
    return Status::Corruption(
        "missing [hierarchy] and/or [authorizations] section");
  }

  auto dag = graph::FromEdgeListText(hierarchy_text);
  if (!dag.ok()) {
    return Status::Corruption("hierarchy: " + dag.status().message());
  }
  auto eacm = acm::FromText(auth_text, *dag);
  if (!eacm.ok()) {
    return Status::Corruption("authorizations: " + eacm.status().message());
  }

  if (strategy.has_value()) options.default_strategy = *strategy;
  AccessControlSystem system(std::move(dag).value(), options);
  // Replay the parsed matrix through the facade to keep interning
  // order identical to the file's sorted order.
  for (const auto& e : eacm->SortedEntries()) {
    const std::string& subject = system.dag().name(e.subject);
    const Status status =
        e.mode == acm::Mode::kPositive
            ? system.Grant(subject, eacm->object_name(e.object),
                           eacm->right_name(e.right))
            : system.DenyAccess(subject, eacm->object_name(e.object),
                                eacm->right_name(e.right));
    if (!status.ok()) {
      return Status::Corruption("authorizations: " + status.message());
    }
  }
  return system;
}

Status SaveSystemToFile(const AccessControlSystem& system,
                        const std::string& path) {
  UCR_RETURN_IF_ERROR(graph::ValidateSerializable(system.dag()));
  // Atomic replace (util/fs.h): the previous save used an unchecked
  // ofstream straight onto `path`, so a crash or full disk mid-write
  // destroyed the only copy. Now a failure at any point leaves the
  // existing file byte-identical.
  return WriteFileAtomic(path, SaveSystemToText(system));
}

StatusOr<AccessControlSystem> LoadSystemFromFile(const std::string& path,
                                                 SystemOptions options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadSystemFromText(buffer.str(), options);
}

}  // namespace ucr::core
