#ifndef UCR_CORE_PERSISTENT_SYSTEM_H_
#define UCR_CORE_PERSISTENT_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/binary_snapshot.h"
#include "core/system.h"
#include "core/wal.h"
#include "util/status.h"

namespace ucr::core {

/// \brief An `AccessControlSystem` backed by a durable store: a
/// directory holding one binary snapshot plus one WAL (DESIGN.md §15).
///
///     <dir>/snapshot.ucrs   full state as of the snapshot's LSN
///     <dir>/wal.log         MutationOp batches committed above it
///
/// `Open` recovers: load the snapshot (mmap'd — a multi-GB hierarchy
/// serves queries seconds after start), scan the WAL, truncate any
/// torn tail, and replay committed batches whose LSN exceeds the
/// snapshot's. `Apply` is the durable `ApplyMutations`: op records are
/// written *before* the in-memory apply, and one commit record +
/// fsync (group commit) makes the batch durable afterwards — a crash
/// at any instant loses only unacknowledged work. `Compact` folds the
/// WAL into a fresh snapshot (written atomically) and truncates it;
/// a crash between those two steps is safe because replay skips
/// records at or below the snapshot's LSN.
///
/// Reads go straight to `system()` — queries are not intermediated.
/// Mutations MUST go through `Apply`/`SetStrategy`; bypassing them to
/// `system()`'s own mutators writes state the store will forget.
///
/// Thread-safety: same as the underlying system's write path — one
/// mutator at a time; concurrent snapshot readers are fine.
class PersistentSystem {
 public:
  /// What recovery found and did, for logs and tests.
  struct OpenStats {
    bool loaded_snapshot = false;
    uint64_t snapshot_lsn = 0;    ///< LSN the snapshot included.
    size_t replayed_batches = 0;  ///< Committed batches re-applied.
    size_t replayed_ops = 0;      ///< Ops re-applied from those batches.
    size_t discarded_ops = 0;     ///< Uncommitted trailing op records.
    uint64_t torn_bytes = 0;      ///< Torn-tail bytes truncated.
  };

  /// Opens (creating if absent) the store at directory `dir` and
  /// recovers to the last committed state. `options` configures the
  /// in-memory system; the snapshot's saved strategy/propagation mode
  /// win over the ones in `options`.
  static StatusOr<PersistentSystem> Open(const std::string& dir,
                                         SystemOptions options = {},
                                         OpenStats* stats = nullptr);

  /// \brief Creates a store at `dir` seeded with `system`'s current
  /// state (one snapshot at LSN 0, empty WAL). Fails if the store
  /// already has a snapshot — seeding is for imports, not overwrites.
  static Status Initialize(const std::string& dir,
                           const AccessControlSystem& system);

  PersistentSystem(PersistentSystem&&) = default;
  PersistentSystem& operator=(PersistentSystem&&) = default;

  /// The recovered in-memory system. Mutate only through `Apply`.
  AccessControlSystem& system() { return *system_; }
  const AccessControlSystem& system() const { return *system_; }

  /// \brief Durable `ApplyMutations`: logs the ops, applies them,
  /// commits with one fsync. On a partial batch failure the applied
  /// prefix is both durable and in memory (`stats` carries
  /// `failed_index`, and the commit record carries the same count, so
  /// recovery replays exactly that prefix). `stats->last_lsn` is the
  /// batch's commit LSN, also emitted to the audit ring as one
  /// `kWalCommit` event — the LSN joins the two trails.
  ///
  /// Fail-stop: if the WAL commit fails *after* the in-memory apply
  /// succeeded, memory now holds mutations a restart would lose. The
  /// store latches unhealthy (`healthy()` flips false) and every later
  /// `Apply`/`SetStrategy` fails with `kFailedPrecondition` rather
  /// than silently acknowledging more work on top of undurable state.
  /// `Compact` is the recovery path: it snapshots the current
  /// in-memory state (making it durable again) and reopens the latch.
  Status Apply(std::span<const AccessControlSystem::MutationOp> ops,
               AccessControlSystem::MutationBatchStats* stats = nullptr);

  /// Durable strategy change (logged + fsync'd, then applied).
  Status SetStrategy(const Strategy& strategy);

  /// \brief Folds the log into a fresh snapshot: write snapshot at the
  /// current LSN (temp-then-rename), then truncate the WAL. Restart
  /// cost collapses to one mmap regardless of history length. Also the
  /// repair verb after an I/O failure: the snapshot persists whatever
  /// is in memory and the WAL reset discards any torn bytes, so a
  /// successful compaction restores `healthy()` and unlatches a
  /// poisoned WAL writer.
  Status Compact();

  /// \brief False after a WAL commit failed post-apply: memory holds
  /// acknowledged-in-RAM-only mutations that a restart would lose, and
  /// the write path is latched shut. Reads stay served (they reflect
  /// real in-memory state); `Compact` heals.
  bool healthy() const { return healthy_; }

  /// \brief Relaxed durability (`synchronous_commit = off`): `Apply`
  /// still appends ordered, checksummed records but skips the
  /// per-commit fsync, so a crash can lose the most recent commits —
  /// never corrupt or reorder them. `Sync` is the explicit barrier;
  /// clean shutdown syncs automatically. Default: every commit fsyncs.
  void set_sync_on_commit(bool sync) { wal_->set_sync_on_commit(sync); }
  Status Sync() { return wal_->Sync(); }

  /// Highest LSN assigned so far (0 = nothing ever logged).
  uint64_t last_lsn() const { return wal_->next_lsn() - 1; }

  const std::string& dir() const { return dir_; }
  static std::string SnapshotPath(const std::string& dir) {
    return dir + "/snapshot.ucrs";
  }
  static std::string WalPath(const std::string& dir) {
    return dir + "/wal.log";
  }

 private:
  /// The `kFailedPrecondition` mutators return while latched.
  Status UnhealthyStatus() const;

  PersistentSystem(std::string dir, AccessControlSystem system, WalWriter wal)
      : dir_(std::move(dir)),
        system_(std::make_unique<AccessControlSystem>(std::move(system))),
        wal_(std::make_unique<WalWriter>(std::move(wal))) {}

  std::string dir_;
  // Boxed so the facade stays cheaply movable.
  std::unique_ptr<AccessControlSystem> system_;
  std::unique_ptr<WalWriter> wal_;
  /// Cleared when a post-apply commit failure leaves memory ahead of
  /// the log; reopened by a successful `Compact`.
  bool healthy_ = true;
};

}  // namespace ucr::core

#endif  // UCR_CORE_PERSISTENT_SYSTEM_H_
