#ifndef UCR_CORE_CONSTRAINTS_H_
#define UCR_CORE_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "acm/acm.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// \file
/// Separation-of-duty and conflict-of-interest constraints over the
/// *effective* access control matrix — the paper's future-work item
/// #4 (§6), following the constraint style of GTRBAC [8] and the role
/// graph model [13].
///
/// Constraints are judged against derived authorizations, so whether a
/// configuration is compliant depends on the active conflict
/// resolution strategy: switching the strategy at run time (the
/// paper's headline feature) can silently create violations, which is
/// exactly what `AuditConstraints` is for.

/// An (object, right) pair — one column of the access control matrix.
struct Permission {
  acm::ObjectId object = 0;
  acm::RightId right = 0;
  bool operator==(const Permission&) const = default;
};

/// Static separation of duty: no subject may hold both permissions
/// effectively (e.g. "submit invoice" and "approve invoice").
struct SodConstraint {
  std::string name;
  Permission first;
  Permission second;
};

/// Conflict-of-interest class: of the listed permissions (e.g. access
/// to each competitor's files), a subject may effectively hold at most
/// `max_granted`.
struct CoiConstraint {
  std::string name;
  std::vector<Permission> permissions;
  size_t max_granted = 1;
};

/// A detected violation: `subject` effectively holds `granted`, which
/// breaks `constraint_name`.
struct ConstraintViolation {
  std::string constraint_name;
  graph::NodeId subject = 0;
  std::vector<Permission> granted;
};

/// \brief A validated collection of constraints.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Adds a separation-of-duty pair. Fails if the two permissions are
  /// equal or the name duplicates an existing constraint.
  Status AddSod(SodConstraint constraint);

  /// Adds a conflict-of-interest class. Fails unless it holds at least
  /// two distinct permissions and 1 <= max_granted < permissions.
  Status AddCoi(CoiConstraint constraint);

  const std::vector<SodConstraint>& sod() const { return sod_; }
  const std::vector<CoiConstraint>& coi() const { return coi_; }
  size_t size() const { return sod_.size() + coi_.size(); }

 private:
  bool NameTaken(const std::string& name) const;

  std::vector<SodConstraint> sod_;
  std::vector<CoiConstraint> coi_;
};

/// Options for `AuditConstraints`.
struct AuditOptions {
  /// Audit only sink subjects (individuals). Groups holding conflicting
  /// permissions are often intentional (they exist to be subdivided),
  /// while an individual holding them is the actual hazard.
  bool sinks_only = true;
};

/// \brief Audits every constraint against the effective matrix of
/// `system` under `strategy`.
///
/// Materializes each referenced (object, right) column once via the
/// whole-hierarchy propagation engine, so the cost is
/// O(distinct permissions x hierarchy) + O(subjects x constraints).
/// Violations are reported in deterministic (constraint, subject)
/// order.
StatusOr<std::vector<ConstraintViolation>> AuditConstraints(
    AccessControlSystem& system, const ConstraintSet& constraints,
    const Strategy& strategy, const AuditOptions& options = {});

}  // namespace ucr::core

#endif  // UCR_CORE_CONSTRAINTS_H_
