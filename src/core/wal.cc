#include "core/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/binio.h"
#include "util/crc32.h"
#include "util/fs.h"

namespace ucr::core {

namespace {

constexpr char kMagic[] = "UCRWAL01";
constexpr size_t kMagicSize = 8;
/// Per-record framing: u32 payload length + u32 payload CRC.
constexpr size_t kFrameSize = 8;
/// A payload is at least the type byte + the LSN.
constexpr size_t kMinPayload = 9;
/// Single-record ceiling; a length field beyond this is corruption,
/// not a big record (the largest legal record is one op whose three
/// strings are bounded by sane name lengths).
constexpr uint32_t kMaxPayload = 1u << 26;  // 64 MiB

struct WalMetrics {
  obs::Counter& records;
  obs::Counter& commits;
  obs::Counter& bytes;
  obs::Counter& fsyncs;
  obs::Counter& replayed;
  obs::Counter& torn_bytes;
  obs::Counter& errors;
};

WalMetrics& GetWalMetrics() {
  static WalMetrics* metrics = new WalMetrics{
      obs::Registry::Global().GetCounter(
          "ucr_wal_records_total", "WAL records appended (op + commit + "
                                   "strategy)"),
      obs::Registry::Global().GetCounter(
          "ucr_wal_commits_total", "WAL batch commit records appended"),
      obs::Registry::Global().GetCounter("ucr_wal_bytes_total",
                                         "Bytes appended to the WAL"),
      obs::Registry::Global().GetCounter(
          "ucr_wal_fsyncs_total", "fsync calls issued by the WAL writer"),
      obs::Registry::Global().GetCounter(
          "ucr_wal_replayed_records_total",
          "Valid records decoded by WAL recovery scans"),
      obs::Registry::Global().GetCounter(
          "ucr_wal_torn_bytes_total",
          "Torn-tail bytes discarded by WAL recovery"),
      obs::Registry::Global().GetCounter(
          "ucr_wal_errors_total", "WAL writer I/O failures"),
  };
  return *metrics;
}

Status ErrnoStatus(const char* what, const std::string& path) {
  if constexpr (obs::kEnabled) GetWalMetrics().errors.Inc();
  return Status::Corruption(std::string(what) + " failed for '" + path +
                            "': " + std::strerror(errno));
}

int RetryingFsync(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

void EncodeOpBody(const AccessControlSystem::MutationOp& op, uint64_t lsn,
                  std::string* body) {
  body->push_back(static_cast<char>(WalWriter::RecordType::kOp));
  bin::AppendU64(lsn, body);
  body->push_back(static_cast<char>(op.kind));
  bin::AppendString(op.subject, body);
  bin::AppendString(op.object, body);
  bin::AppendString(op.right, body);
}

}  // namespace

StatusOr<WalWriter> WalWriter::Open(std::string path, uint64_t next_lsn) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return ErrnoStatus("lseek", path);
  }
  if (size == 0) {
    const Status written =
        WriteAllToFd(fd, std::string_view(kMagic, kMagicSize), path);
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    if (RetryingFsync(fd) != 0) {
      const Status st = ErrnoStatus("fsync", path);
      ::close(fd);
      return st;
    }
  }
  return WalWriter(std::move(path), fd, next_lsn);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      next_lsn_(other.next_lsn_),
      sync_on_commit_(other.sync_on_commit_),
      unsynced_(other.unsynced_),
      poisoned_(other.poisoned_),
      pending_(std::move(other.pending_)),
      scratch_(std::move(other.scratch_)) {
  other.fd_ = -1;
  other.unsynced_ = false;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    next_lsn_ = other.next_lsn_;
    sync_on_commit_ = other.sync_on_commit_;
    unsynced_ = other.unsynced_;
    poisoned_ = other.poisoned_;
    pending_ = std::move(other.pending_);
    scratch_ = std::move(other.scratch_);
    other.fd_ = -1;
    other.unsynced_ = false;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Relaxed commits are best-effort durable on clean shutdown (a
    // poisoned writer has nothing trustworthy left to sync).
    if (unsynced_ && !poisoned_) RetryingFsync(fd_);
    ::close(fd_);
  }
}

Status WalWriter::Poison(Status status) {
  poisoned_ = true;
  // The unwritten residue can never be appended now — anything written
  // after the failure would sit beyond torn bytes, unreachable to the
  // recovery scan.
  pending_.clear();
  return status;
}

Status WalWriter::PoisonedStatus() const {
  return Status::FailedPrecondition(
      "WAL writer latched after an earlier I/O failure (torn bytes may "
      "be on disk); compaction (Reset) is required before further "
      "appends: " + path_);
}

Status WalWriter::Sync() {
  if (poisoned_) return PoisonedStatus();
  if (RetryingFsync(fd_) != 0) return Poison(ErrnoStatus("fsync", path_));
  if constexpr (obs::kEnabled) GetWalMetrics().fsyncs.Inc();
  unsynced_ = false;
  return Status::OK();
}

void WalWriter::EncodeRecord(RecordType type, std::string_view body) {
  (void)type;
  bin::AppendU32(static_cast<uint32_t>(body.size()), &pending_);
  bin::AppendU32(Crc32(body), &pending_);
  pending_.append(body.data(), body.size());
  if constexpr (obs::kEnabled) GetWalMetrics().records.Inc();
}

Status WalWriter::FlushPending(bool sync) {
  if (!pending_.empty()) {
    const Status written = WriteAllToFd(fd_, pending_, path_);
    if (!written.ok()) {
      // The write may have landed a prefix — torn bytes the recovery
      // scan will stop at. Latch: a later successful append would be
      // stranded beyond them and silently lost on recovery.
      if constexpr (obs::kEnabled) GetWalMetrics().errors.Inc();
      return Poison(written);
    }
    if constexpr (obs::kEnabled) GetWalMetrics().bytes.Inc(pending_.size());
    pending_.clear();
  }
  if (sync) {
    if (RetryingFsync(fd_) != 0) return Poison(ErrnoStatus("fsync", path_));
    if constexpr (obs::kEnabled) GetWalMetrics().fsyncs.Inc();
  }
  return Status::OK();
}

Status WalWriter::BeginBatch(
    std::span<const AccessControlSystem::MutationOp> ops) {
  if (poisoned_) return PoisonedStatus();
  for (const auto& op : ops) {
    scratch_.clear();
    EncodeOpBody(op, next_lsn_++, &scratch_);
    EncodeRecord(RecordType::kOp, scratch_);
  }
  // Written now (so the commit fsync covers them), synced at Commit.
  return FlushPending(/*sync=*/false);
}

StatusOr<uint64_t> WalWriter::Commit(size_t op_count, size_t applied) {
  if (poisoned_) return PoisonedStatus();
  const uint64_t lsn = next_lsn_++;
  scratch_.clear();
  scratch_.push_back(static_cast<char>(RecordType::kCommit));
  bin::AppendU64(lsn, &scratch_);
  bin::AppendU64(op_count, &scratch_);
  bin::AppendU64(applied, &scratch_);
  EncodeRecord(RecordType::kCommit, scratch_);
  UCR_RETURN_IF_ERROR(FlushPending(/*sync=*/sync_on_commit_));
  if (!sync_on_commit_) unsynced_ = true;
  if constexpr (obs::kEnabled) GetWalMetrics().commits.Inc();
  return lsn;
}

StatusOr<uint64_t> WalWriter::AppendStrategyChange(std::string_view mnemonic) {
  if (poisoned_) return PoisonedStatus();
  const uint64_t lsn = next_lsn_++;
  scratch_.clear();
  scratch_.push_back(static_cast<char>(RecordType::kStrategy));
  bin::AppendU64(lsn, &scratch_);
  bin::AppendString(mnemonic, &scratch_);
  EncodeRecord(RecordType::kStrategy, scratch_);
  UCR_RETURN_IF_ERROR(FlushPending(/*sync=*/sync_on_commit_));
  if (!sync_on_commit_) unsynced_ = true;
  return lsn;
}

Status WalWriter::Reset(uint64_t next_lsn) {
  pending_.clear();
  if (::ftruncate(fd_, static_cast<off_t>(kMagicSize)) != 0) {
    return ErrnoStatus("ftruncate", path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) return ErrnoStatus("lseek", path_);
  if (RetryingFsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  if constexpr (obs::kEnabled) GetWalMetrics().fsyncs.Inc();
  unsynced_ = false;
  // The truncate discarded any torn bytes a failed append left, so the
  // file is back at a known-good state: the latch can open.
  poisoned_ = false;
  next_lsn_ = next_lsn;
  return Status::OK();
}

StatusOr<WalContents> ReadWal(const std::string& path,
                              bool repair_torn_tail) {
  WalContents contents;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return contents;  // Fresh store: empty log.
    return ErrnoStatus("open", path);
  }
  std::string bytes;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) != 0) {
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status st = ErrnoStatus("read", path);
        ::close(fd);
        return st;
      }
      bytes.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);

  if (bytes.size() < kMagicSize) {
    // A short or absent magic can only come from a crash during
    // creation — nothing was ever logged, so an empty log is the
    // faithful reading. Truncate to nothing so the next writer
    // recreates a clean file.
    if (std::memcmp(bytes.data(), kMagic, bytes.size()) != 0) {
      return Status::Corruption("not a WAL file (bad magic): " + path);
    }
    contents.torn_bytes = bytes.size();
    if (repair_torn_tail && !bytes.empty()) {
      const int wfd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (wfd < 0) return ErrnoStatus("open", path);
      const bool truncated =
          ::ftruncate(wfd, 0) == 0 && RetryingFsync(wfd) == 0;
      ::close(wfd);
      if (!truncated) return ErrnoStatus("truncate", path);
    }
    return contents;
  }
  if (std::memcmp(bytes.data(), kMagic, kMagicSize) != 0) {
    return Status::Corruption("not a WAL file (bad magic): " + path);
  }

  size_t pos = kMagicSize;
  // End of the last structurally valid record (torn-byte accounting).
  size_t valid_end = pos;
  // End of the last kCommit/kStrategy record — the repair truncation
  // point. Valid op records past it are an unacknowledged batch; if
  // they stayed in the file, the next writer would append fresh
  // batches after them and the *next* recovery scan would mis-count
  // the orphans into the first new commit's batch, fail its op_count
  // check, and discard acknowledged history.
  size_t committed_end = pos;
  // Ops of the batch currently being assembled (between commits).
  std::vector<AccessControlSystem::MutationOp> open_ops;
  uint64_t prev_lsn = 0;

  while (pos < bytes.size()) {
    bin::Reader frame(bytes.data() + pos, bytes.size() - pos);
    uint32_t len = 0;
    uint32_t crc = 0;
    std::string_view payload;
    if (!frame.ReadU32(&len) || !frame.ReadU32(&crc) || len < kMinPayload ||
        len > kMaxPayload || !frame.ReadBytes(len, &payload) ||
        Crc32(payload) != crc) {
      break;  // Torn tail (or corruption): stop, keep the valid prefix.
    }

    bin::Reader body(payload);
    uint8_t type_byte = 0;
    {
      std::string_view tb;
      body.ReadBytes(1, &tb);
      type_byte = static_cast<uint8_t>(tb[0]);
    }
    uint64_t lsn = 0;
    if (!body.ReadU64(&lsn) || lsn <= prev_lsn) break;

    // Events and `open_ops` are mutated only after a record validates
    // *fully* (trailing body bytes included), so everything reported to
    // the caller lies at or before `committed_end` — replay and the
    // repaired file can never disagree.
    bool record_ok = true;
    const auto type = static_cast<WalWriter::RecordType>(type_byte);
    switch (type) {
      case WalWriter::RecordType::kOp: {
        std::string_view kind_byte;
        AccessControlSystem::MutationOp op;
        record_ok = body.ReadBytes(1, &kind_byte) &&
                    body.ReadString(&op.subject) &&
                    body.ReadString(&op.object) &&
                    body.ReadString(&op.right) && body.remaining() == 0;
        if (record_ok) {
          const auto raw = static_cast<uint8_t>(kind_byte[0]);
          record_ok =
              raw <= static_cast<uint8_t>(
                         AccessControlSystem::MutationOp::Kind::
                             kRemoveMembership);
          op.kind = static_cast<AccessControlSystem::MutationOp::Kind>(raw);
        }
        if (record_ok) open_ops.push_back(std::move(op));
        break;
      }
      case WalWriter::RecordType::kCommit: {
        uint64_t op_count = 0;
        uint64_t applied = 0;
        record_ok = body.ReadU64(&op_count) && body.ReadU64(&applied) &&
                    body.remaining() == 0 && op_count == open_ops.size() &&
                    applied <= op_count;
        if (record_ok) {
          WalEvent event;
          event.kind = WalEvent::Kind::kBatch;
          event.lsn = lsn;
          event.applied = static_cast<size_t>(applied);
          event.ops = std::move(open_ops);
          open_ops.clear();
          contents.events.push_back(std::move(event));
        }
        break;
      }
      case WalWriter::RecordType::kStrategy: {
        // The writer never interleaves a strategy change with a
        // batch's op records, so one appearing mid-batch means the ops
        // before it are orphans (a legacy repair bug or corruption) —
        // stop, so the repair truncates back before them.
        if (!open_ops.empty()) {
          record_ok = false;
          break;
        }
        WalEvent event;
        event.kind = WalEvent::Kind::kStrategyChange;
        event.lsn = lsn;
        record_ok = body.ReadString(&event.strategy_mnemonic) &&
                    body.remaining() == 0;
        if (record_ok) contents.events.push_back(std::move(event));
        break;
      }
      default:
        record_ok = false;
    }
    if (!record_ok) break;

    prev_lsn = lsn;
    contents.last_lsn = lsn;
    pos += kFrameSize + len;
    valid_end = pos;
    if (type != WalWriter::RecordType::kOp) committed_end = pos;
    if constexpr (obs::kEnabled) GetWalMetrics().replayed.Inc();
  }

  contents.torn_bytes += bytes.size() - valid_end;
  contents.uncommitted_ops = open_ops.size();
  if constexpr (obs::kEnabled) {
    if (contents.torn_bytes > 0) {
      GetWalMetrics().torn_bytes.Inc(contents.torn_bytes);
    }
  }

  // Repair truncates to the *committed* boundary, not just past the
  // torn bytes: trailing valid-but-uncommitted op records go too, so
  // the next writer always appends immediately after a committed
  // record and a future scan can never mis-attribute orphans.
  if (repair_torn_tail && committed_end < bytes.size()) {
    const int wfd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (wfd < 0) return ErrnoStatus("open", path);
    if (::ftruncate(wfd, static_cast<off_t>(committed_end)) != 0 ||
        RetryingFsync(wfd) != 0) {
      const Status st = ErrnoStatus("truncate", path);
      ::close(wfd);
      return st;
    }
    ::close(wfd);
  }
  return contents;
}

}  // namespace ucr::core
