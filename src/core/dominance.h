#ifndef UCR_CORE_DOMINANCE_H_
#define UCR_CORE_DOMINANCE_H_

#include <cstdint>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/propagate.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// Work counters of one Dominance() run.
struct DominanceStats {
  uint64_t nodes_visited = 0;  ///< Frontier nodes scanned / path steps taken.
  uint32_t levels = 0;         ///< BFS levels expanded (level variant only).
  bool early_exit = false;     ///< Returned early on a preferred label.
};

/// \brief Algorithm Dominance() — the baseline evaluator for the
/// D*LP* strategy family, reconstructed from Chinaei & Zhang [2] as
/// characterized in the paper's §4.
///
/// Instead of propagating every label down every path, Dominance()
/// walks *upward* from the subject in breadth-first levels (level k =
/// ancestors at shortest distance k) and stops at the first level
/// containing any authorization: under "most specific takes
/// precedence" (lRule = min) those are exactly the authorizations that
/// survive the locality filter, so the level's modes decide — a single
/// mode wins, a mixed level falls to the preference rule.
///
/// The placement sensitivity the paper reports comes from the
/// mid-level shortcut: as soon as a label equal to the *preferred*
/// mode is seen, the result is already determined (it wins both the
/// single-mode and the mixed case), so the scan aborts without
/// visiting the rest of the hierarchy. With preference '-' and early
/// negative authorizations this returns almost immediately; with few
/// negatives it degenerates to a full ancestor scan.
///
/// Restrictions (by design, matching the baseline's purpose):
/// locality is fixed to most-specific and majority is not supported.
/// `default_rule` may be kNone to evaluate the LP* family.
/// Equivalent to `Resolve` with Strategy{default_rule, kMostSpecific,
/// kSkip, preference} — a property the test suite checks exhaustively.
acm::Mode Dominance(const graph::Dag& dag, LabelView labels,
                    graph::NodeId subject, DefaultRule default_rule,
                    PreferenceRule preference,
                    DominanceStats* stats = nullptr);

/// \brief Algorithm DominancePathwise() — the cost-faithful
/// reconstruction of Chinaei & Zhang's baseline as *benchmarked* in
/// the paper's Fig. 7(a).
///
/// Where `Dominance` above aggregates ancestors level by level (and is
/// therefore uniformly fast), the published baseline's running time is
/// described as *placement-dependent*: "occasionally very fast due to
/// visiting an early negative authorization ... but not as efficient
/// as Resolve() for objects that have few negative authorizations",
/// able to land "anywhere below [Resolve's time], and occasionally
/// higher". That cost profile implies a per-path traversal with no
/// cross-path aggregation: this variant recursively asks each parent
/// for the most specific authorization on its own paths, stops a path
/// at the first labeled node (per-path most-specific — the
/// Bertino-style weak/strong semantics of [2]/Bertino et al. [1]),
/// merges siblings with the preference rule, and short-circuits the
/// remaining parents the moment any path yields the *preferred* mode.
///
/// Consequences, matching the published description:
///  * an early preferred (e.g. negative under P-) label prunes hard —
///    very fast;
///  * with few/no preferred labels it walks every path up to its first
///    label, i.e. O(d) work like Resolve's propagation but with
///    per-path recursion overhead — comparable to, sometimes worse
///    than, Resolve();
///  * on tree-shaped hierarchies (single path to each ancestor) it
///    coincides exactly with Resolve's D*LP* (a tested property); on
///    DAGs the per-path semantics may differ from the global
///    most-specific rule, which is precisely the gap the unified
///    Resolve() closes.
///
/// `max_steps` bounds the path exploration (FailedPrecondition on
/// breach) since path counts can be exponential.
StatusOr<acm::Mode> DominancePathwise(const graph::Dag& dag, LabelView labels,
                                      graph::NodeId subject,
                                      DefaultRule default_rule,
                                      PreferenceRule preference,
                                      DominanceStats* stats = nullptr,
                                      uint64_t max_steps = UINT64_MAX);

/// End-to-end convenience mirroring `ResolveAccess`.
StatusOr<acm::Mode> DominanceAccess(const graph::Dag& dag,
                                    const acm::ExplicitAcm& eacm,
                                    graph::NodeId subject,
                                    acm::ObjectId object, acm::RightId right,
                                    DefaultRule default_rule,
                                    PreferenceRule preference,
                                    DominanceStats* stats = nullptr);

}  // namespace ucr::core

#endif  // UCR_CORE_DOMINANCE_H_
