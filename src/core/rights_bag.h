#ifndef UCR_CORE_RIGHTS_BAG_H_
#define UCR_CORE_RIGHTS_BAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "acm/mode.h"

namespace ucr::core {

/// \brief One group of equal tuples in the propagated `allRights`
/// relation: (distance, mode) with a multiplicity.
///
/// The paper's relation has one tuple per (source label, propagation
/// path); equal (dis, mode) pairs from different sources/paths are
/// distinct tuples and count multiply in the majority policy, so the
/// bag tracks multiplicities exactly.
struct RightsEntry {
  uint32_t dis = 0;
  acm::PropagatedMode mode = acm::PropagatedMode::kDefault;
  uint64_t multiplicity = 1;

  bool operator==(const RightsEntry&) const = default;
};

/// \brief The `allRights` bag for one ⟨subject, object, right⟩ triple
/// (paper Table 1): every authorization label reaching the subject,
/// with per-path distances.
///
/// Normalized form: entries sorted by (dis, mode), no duplicate
/// (dis, mode) pairs, no zero multiplicities.
class RightsBag {
 public:
  RightsBag() = default;

  /// Adds `multiplicity` tuples (dis, mode). Not normalized until
  /// `Normalize()` is called.
  void Add(uint32_t dis, acm::PropagatedMode mode, uint64_t multiplicity = 1);

  /// Sorts and merges duplicate (dis, mode) groups.
  void Normalize();

  const std::vector<RightsEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Total tuple count (sum of multiplicities), saturating.
  uint64_t TotalTuples() const;

  /// Number of distinct (dis, mode) groups.
  size_t GroupCount() const { return entries_.size(); }

  bool operator==(const RightsBag& other) const {
    return entries_ == other.entries_;
  }

  /// Renders "dis:mode xN" groups for diagnostics, e.g.
  /// "{1:- , 1:d, 2:d, 1:+, 3:+, 3:d}".
  std::string ToString() const;

 private:
  std::vector<RightsEntry> entries_;
};

}  // namespace ucr::core

#endif  // UCR_CORE_RIGHTS_BAG_H_
