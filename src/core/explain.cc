#include "core/explain.h"

#include <algorithm>
#include <sstream>

#include "core/mixed.h"
#include "core/propagate.h"
#include "graph/ancestor_subgraph.h"

namespace ucr::core {

namespace {

using acm::Mode;
using acm::PropagatedMode;
using graph::AncestorSubgraph;
using graph::LocalId;

/// The explicit mode after the strategy's default rule, or nullopt if
/// the contribution is dropped (a 'd' under dRule = none).
std::optional<Mode> EffectiveMode(PropagatedMode mode, DefaultRule rule) {
  switch (mode) {
    case PropagatedMode::kPositive:
      return Mode::kPositive;
    case PropagatedMode::kNegative:
      return Mode::kNegative;
    case PropagatedMode::kDefault:
      if (rule == DefaultRule::kPositive) return Mode::kPositive;
      if (rule == DefaultRule::kNegative) return Mode::kNegative;
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::string Explanation::ToString(const graph::Dag& dag) const {
  std::ostringstream out;
  out << (decision == Mode::kPositive ? "GRANTED" : "DENIED") << " by the "
      << deciding_policy << " policy";
  if (trace.c1.has_value()) {
    out << " (c1=" << *trace.c1 << ", c2=" << *trace.c2 << ")";
  }
  out << "\n";
  for (const Contribution& c : contributions) {
    out << "  " << (c.survived_filters ? "* " : "  ") << dag.name(c.source)
        << " '" << acm::PropagatedModeToChar(c.mode) << "' at distance ";
    if (c.min_distance == c.max_distance) {
      out << c.min_distance;
    } else {
      out << c.min_distance << ".." << c.max_distance;
    }
    out << " (" << c.tuple_count
        << (c.tuple_count == 1 ? " path" : " paths") << ")";
    if (!c.survived_filters) out << " [filtered out]";
    out << "\n";
  }
  return out.str();
}

StatusOr<Explanation> ExplainAccess(const graph::Dag& dag,
                                    const acm::ExplicitAcm& eacm,
                                    graph::NodeId subject,
                                    acm::ObjectId object, acm::RightId right,
                                    const Strategy& strategy) {
  if (subject >= dag.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (object >= eacm.object_count() || right >= eacm.right_count()) {
    return Status::OutOfRange("object/right id out of range");
  }
  const Strategy s = strategy.Canonical();
  const AncestorSubgraph sub(dag, subject);
  const std::vector<std::optional<Mode>> labels =
      eacm.ExtractLabels(dag.node_count(), object, right);
  const std::vector<std::vector<uint64_t>> profiles =
      AllDistanceProfiles(sub);

  // Collect contributing sources and assemble the total bag from
  // their profiles (identical to PropagateAggregated by construction;
  // the test suite pins this).
  Explanation explanation;
  RightsBag bag;
  for (LocalId v = 0; v < sub.member_count(); ++v) {
    const graph::NodeId global = sub.global_id(v);
    std::optional<PropagatedMode> seed;
    if (labels[global].has_value()) {
      seed = acm::ToPropagated(*labels[global]);
    } else if (sub.parents(v).empty()) {
      seed = PropagatedMode::kDefault;
    }
    if (!seed.has_value()) continue;

    Contribution c;
    c.source = global;
    c.mode = *seed;
    c.min_distance = sub.shortest_distance_to_sink(v);
    c.max_distance = sub.longest_distance_to_sink(v);
    c.tuple_count = 0;
    for (size_t len = 0; len < profiles[v].size(); ++len) {
      if (profiles[v][len] == 0) continue;
      c.tuple_count += profiles[v][len];
      bag.Add(static_cast<uint32_t>(len), *seed, profiles[v][len]);
    }
    explanation.contributions.push_back(c);
  }
  bag.Normalize();

  explanation.decision = Resolve(bag, s, &explanation.trace);

  // Reconstruct which sources were visible at the deciding step.
  // First the default rule, then (unless the majority counted the
  // whole bag) the locality filter's target distance.
  uint32_t target_min = UINT32_MAX;
  uint32_t target_max = 0;
  bool any = false;
  for (const RightsEntry& e : bag.entries()) {
    if (!EffectiveMode(e.mode, s.default_rule).has_value()) continue;
    any = true;
    target_min = std::min(target_min, e.dis);
    target_max = std::max(target_max, e.dis);
  }
  const bool counted_whole_bag =
      explanation.trace.returned_line == 6 &&
      s.majority_rule == MajorityRule::kBefore;
  for (Contribution& c : explanation.contributions) {
    if (!EffectiveMode(c.mode, s.default_rule).has_value()) {
      c.survived_filters = false;
      continue;
    }
    if (s.locality_rule == LocalityRule::kIdentity || counted_whole_bag ||
        !any) {
      c.survived_filters = true;
      continue;
    }
    const uint32_t target = s.locality_rule == LocalityRule::kMostSpecific
                                ? target_min
                                : target_max;
    // The source survives if any of its paths hits the target
    // distance.
    const LocalId local = sub.ToLocal(c.source);
    c.survived_filters = target < profiles[local].size() &&
                         profiles[local][target] > 0;
  }

  // Name the deciding policy.
  if (explanation.trace.returned_line == 6) {
    explanation.deciding_policy = "majority";
  } else if (explanation.trace.returned_line == 9) {
    explanation.deciding_policy = "preference";
  } else if (s.locality_rule != LocalityRule::kIdentity) {
    explanation.deciding_policy = "locality";
  } else {
    // Line 8 with no locality filter: a single mode survived on its
    // own. If every surviving contribution is a rewritten default,
    // the default policy decided; otherwise the labels were unanimous.
    bool all_defaults = true;
    for (const Contribution& c : explanation.contributions) {
      if (c.survived_filters && c.mode != PropagatedMode::kDefault) {
        all_defaults = false;
      }
    }
    explanation.deciding_policy = all_defaults ? "default" : "unanimity";
  }

  // Presentation order: explicit labels before defaults, then by
  // proximity, then by id for determinism.
  std::stable_sort(explanation.contributions.begin(),
                   explanation.contributions.end(),
                   [](const Contribution& a, const Contribution& b) {
                     const bool a_default =
                         a.mode == PropagatedMode::kDefault;
                     const bool b_default =
                         b.mode == PropagatedMode::kDefault;
                     if (a_default != b_default) return b_default;
                     if (a.min_distance != b.min_distance) {
                       return a.min_distance < b.min_distance;
                     }
                     return a.source < b.source;
                   });
  return explanation;
}

}  // namespace ucr::core
