#include "core/strategy.h"

#include <array>

namespace ucr::core {

namespace {

// The eight "policy shapes" between the default prefix and the
// preference suffix, in the enumeration order documented on
// AllStrategies(). Each maps to (locality, majority).
struct Shape {
  const char* text;
  LocalityRule locality;
  MajorityRule majority;
};

constexpr std::array<Shape, 8> kShapes = {{
    {"", LocalityRule::kIdentity, MajorityRule::kSkip},
    {"M", LocalityRule::kIdentity, MajorityRule::kBefore},
    {"L", LocalityRule::kMostSpecific, MajorityRule::kSkip},
    {"G", LocalityRule::kMostGeneral, MajorityRule::kSkip},
    {"LM", LocalityRule::kMostSpecific, MajorityRule::kAfter},
    {"GM", LocalityRule::kMostGeneral, MajorityRule::kAfter},
    {"ML", LocalityRule::kMostSpecific, MajorityRule::kBefore},
    {"MG", LocalityRule::kMostGeneral, MajorityRule::kBefore},
}};

size_t ShapeIndexOf(const Strategy& s) {
  for (size_t i = 0; i < kShapes.size(); ++i) {
    if (kShapes[i].locality == s.locality_rule &&
        kShapes[i].majority == s.majority_rule) {
      return i;
    }
  }
  return kShapes.size();  // The non-canonical alias.
}

}  // namespace

bool Strategy::IsCanonical() const {
  return !(majority_rule == MajorityRule::kAfter &&
           locality_rule == LocalityRule::kIdentity);
}

Strategy Strategy::Canonical() const {
  Strategy s = *this;
  if (!s.IsCanonical()) s.majority_rule = MajorityRule::kBefore;
  return s;
}

std::string Strategy::ToMnemonic() const {
  const Strategy s = Canonical();
  std::string out;
  if (s.default_rule == DefaultRule::kPositive) out += "D+";
  if (s.default_rule == DefaultRule::kNegative) out += "D-";
  out += kShapes[ShapeIndexOf(s)].text;
  out += 'P';
  out += s.preference_rule == PreferenceRule::kPositive ? '+' : '-';
  return out;
}

uint8_t Strategy::CanonicalIndex() const {
  const Strategy s = Canonical();
  const size_t d = static_cast<size_t>(s.default_rule);          // 0..2
  const size_t shape = ShapeIndexOf(s);                          // 0..7
  const size_t p = static_cast<size_t>(s.preference_rule);       // 0..1
  return static_cast<uint8_t>((d * kShapes.size() + shape) * 2 + p);
}

StatusOr<Strategy> ParseStrategy(std::string_view mnemonic) {
  std::string_view rest = mnemonic;
  auto error = [&mnemonic](const std::string& what) {
    return Status::InvalidArgument("strategy '" + std::string(mnemonic) +
                                   "': " + what);
  };

  Strategy s;
  if (rest.size() >= 2 && rest[0] == 'D') {
    if (rest[1] == '+') {
      s.default_rule = DefaultRule::kPositive;
    } else if (rest[1] == '-') {
      s.default_rule = DefaultRule::kNegative;
    } else {
      return error("'D' must be followed by '+' or '-'");
    }
    rest.remove_prefix(2);
  }

  if (rest.size() < 2 || rest[rest.size() - 2] != 'P') {
    return error("must end with 'P+' or 'P-'");
  }
  const char pref = rest.back();
  if (pref == '+') {
    s.preference_rule = PreferenceRule::kPositive;
  } else if (pref == '-') {
    s.preference_rule = PreferenceRule::kNegative;
  } else {
    return error("must end with 'P+' or 'P-'");
  }
  rest.remove_suffix(2);

  for (const Shape& shape : kShapes) {
    if (rest == shape.text) {
      s.locality_rule = shape.locality;
      s.majority_rule = shape.majority;
      return s;
    }
  }
  return error("unknown policy shape '" + std::string(rest) +
               "' (expected one of '', M, L, G, LM, GM, ML, MG)");
}

const std::vector<Strategy>& AllStrategies() {
  static const std::vector<Strategy>& all = *new std::vector<Strategy>([] {
    std::vector<Strategy> v;
    v.reserve(48);
    for (DefaultRule d : {DefaultRule::kNone, DefaultRule::kPositive,
                          DefaultRule::kNegative}) {
      for (const Shape& shape : kShapes) {
        for (PreferenceRule p :
             {PreferenceRule::kPositive, PreferenceRule::kNegative}) {
          v.push_back(Strategy{d, shape.locality, shape.majority, p});
        }
      }
    }
    return v;
  }());
  return all;
}

namespace strategies {

StatusOr<Strategy> DPlusLPMinus() { return ParseStrategy("D+LP-"); }

}  // namespace strategies

}  // namespace ucr::core
