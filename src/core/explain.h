#ifndef UCR_CORE_EXPLAIN_H_
#define UCR_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// \file
/// Decision provenance. `Resolve()` answers *whether* a subject may
/// act; an administrator debugging a policy needs to know *why* —
/// which ancestors' authorizations reached the subject, at which
/// distances, which of them survived the strategy's filters, and
/// which policy ultimately decided. This module re-runs the pipeline
/// with per-source provenance and renders the answer.

/// One authorization source contributing to a decision.
struct Contribution {
  graph::NodeId source = 0;          ///< The ancestor carrying the label.
  acm::PropagatedMode mode = acm::PropagatedMode::kDefault;
  uint32_t min_distance = 0;         ///< Shortest path to the subject.
  uint32_t max_distance = 0;         ///< Longest path to the subject.
  uint64_t tuple_count = 0;          ///< Paths (= tuples) it contributes.
  bool survived_filters = false;     ///< Still present at the deciding step.
};

/// A resolved decision with full provenance.
struct Explanation {
  acm::Mode decision = acm::Mode::kNegative;
  ResolveTrace trace;
  /// Every source whose label reached the subject, explicit labels
  /// first, then defaulted roots; each group ordered by min_distance.
  std::vector<Contribution> contributions;
  /// Which policy decided, as prose: "majority", "locality",
  /// "preference", "default".
  std::string deciding_policy;

  /// Renders a multi-line human-readable report; node names resolved
  /// against `dag`.
  std::string ToString(const graph::Dag& dag) const;
};

/// \brief Resolves ⟨subject, object, right⟩ under `strategy` and
/// explains the outcome.
///
/// The decision is guaranteed identical to `ResolveAccess` (tested);
/// the provenance adds one distance-profile pass per contributing
/// source.
StatusOr<Explanation> ExplainAccess(const graph::Dag& dag,
                                    const acm::ExplicitAcm& eacm,
                                    graph::NodeId subject,
                                    acm::ObjectId object, acm::RightId right,
                                    const Strategy& strategy);

}  // namespace ucr::core

#endif  // UCR_CORE_EXPLAIN_H_
