#include "core/dominance.h"

#include <cassert>
#include <optional>
#include <vector>

namespace ucr::core {

namespace {

using acm::Mode;

/// The label Dominance() sees on `node`: its explicit mode, or the
/// default mode if it is an unlabeled root and a default policy is on.
std::optional<Mode> NodeLabel(const graph::Dag& dag, LabelView labels,
                              graph::NodeId node, DefaultRule default_rule) {
  if (labels[node].has_value()) return labels[node];
  if (dag.is_root(node)) {
    if (default_rule == DefaultRule::kPositive) return Mode::kPositive;
    if (default_rule == DefaultRule::kNegative) return Mode::kNegative;
  }
  return std::nullopt;
}

}  // namespace

acm::Mode Dominance(const graph::Dag& dag, LabelView labels,
                    graph::NodeId subject, DefaultRule default_rule,
                    PreferenceRule preference, DominanceStats* stats) {
  assert(subject < dag.node_count());
  assert(labels.size() >= dag.node_count());

  const Mode preferred = preference == PreferenceRule::kPositive
                             ? Mode::kPositive
                             : Mode::kNegative;
  DominanceStats local_stats;
  DominanceStats& st = stats != nullptr ? *stats : local_stats;
  st = DominanceStats{};

  std::vector<char> visited(dag.node_count(), 0);
  std::vector<graph::NodeId> frontier{subject};
  visited[subject] = 1;

  std::vector<graph::NodeId> next;
  while (!frontier.empty()) {
    bool saw_non_preferred = false;
    for (graph::NodeId v : frontier) {
      ++st.nodes_visited;
      const std::optional<Mode> label =
          NodeLabel(dag, labels, v, default_rule);
      if (!label.has_value()) continue;
      if (*label == preferred) {
        // Shortcut: at the nearest labeled level, a preferred-mode
        // label wins whether the level is uniform or mixed.
        st.early_exit = true;
        return preferred;
      }
      saw_non_preferred = true;
    }
    if (saw_non_preferred) {
      // The nearest labeled level contains only the non-preferred
      // mode: it survives the most-specific filter uncontested.
      return preferred == Mode::kPositive ? Mode::kNegative
                                          : Mode::kPositive;
    }
    next.clear();
    for (graph::NodeId v : frontier) {
      for (graph::NodeId p : dag.parents(v)) {
        if (!visited[p]) {
          visited[p] = 1;
          next.push_back(p);
        }
      }
    }
    frontier.swap(next);
    if (!frontier.empty()) ++st.levels;
  }

  // No authorization anywhere in the ancestor closure (possible only
  // with default_rule = kNone): the preference rule decides.
  return preferred;
}

namespace {

/// Tri-state result of a per-path exploration.
enum class PathwiseOutcome : uint8_t {
  kNone = 0,       // No authorization on any explored path.
  kPreferred,      // Some path's most specific label is the preferred mode.
  kNonPreferred,   // Labels found, all of the non-preferred mode.
};

struct PathwiseContext {
  const graph::Dag* dag;
  LabelView labels;
  DefaultRule default_rule;
  acm::Mode preferred;
  DominanceStats* stats;
  uint64_t steps_left;
  bool budget_exhausted = false;
};

/// Per-path most-specific evaluation: a path stops at its first
/// labeled node; sibling paths merge under the preference rule, with
/// short-circuit once the preferred mode is established.
PathwiseOutcome Explore(PathwiseContext& ctx, graph::NodeId node) {
  if (ctx.steps_left == 0) {
    ctx.budget_exhausted = true;
    return PathwiseOutcome::kNone;
  }
  --ctx.steps_left;
  if (ctx.stats != nullptr) ++ctx.stats->nodes_visited;

  const std::optional<Mode> label =
      NodeLabel(*ctx.dag, ctx.labels, node, ctx.default_rule);
  if (label.has_value()) {
    return *label == ctx.preferred ? PathwiseOutcome::kPreferred
                                   : PathwiseOutcome::kNonPreferred;
  }
  PathwiseOutcome merged = PathwiseOutcome::kNone;
  for (graph::NodeId p : ctx.dag->parents(node)) {
    const PathwiseOutcome up = Explore(ctx, p);
    if (up == PathwiseOutcome::kPreferred) {
      if (ctx.stats != nullptr) ctx.stats->early_exit = true;
      return PathwiseOutcome::kPreferred;  // Prune remaining parents.
    }
    if (up == PathwiseOutcome::kNonPreferred) merged = up;
    if (ctx.budget_exhausted) break;
  }
  return merged;
}

}  // namespace

StatusOr<acm::Mode> DominancePathwise(const graph::Dag& dag, LabelView labels,
                                      graph::NodeId subject,
                                      DefaultRule default_rule,
                                      PreferenceRule preference,
                                      DominanceStats* stats,
                                      uint64_t max_steps) {
  if (subject >= dag.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  if (stats != nullptr) *stats = DominanceStats{};
  PathwiseContext ctx{&dag,
                      labels,
                      default_rule,
                      preference == PreferenceRule::kPositive
                          ? Mode::kPositive
                          : Mode::kNegative,
                      stats,
                      max_steps};
  const PathwiseOutcome outcome = Explore(ctx, subject);
  if (ctx.budget_exhausted) {
    return Status::FailedPrecondition(
        "DominancePathwise exceeded max_steps (path explosion)");
  }
  switch (outcome) {
    case PathwiseOutcome::kPreferred:
      return ctx.preferred;
    case PathwiseOutcome::kNonPreferred:
      return acm::Negate(ctx.preferred);
    case PathwiseOutcome::kNone:
      return ctx.preferred;  // Nothing derivable: the preference rule.
  }
  return Status::Internal("unreachable");
}

StatusOr<acm::Mode> DominanceAccess(const graph::Dag& dag,
                                    const acm::ExplicitAcm& eacm,
                                    graph::NodeId subject,
                                    acm::ObjectId object, acm::RightId right,
                                    DefaultRule default_rule,
                                    PreferenceRule preference,
                                    DominanceStats* stats) {
  if (subject >= dag.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  const std::vector<std::optional<acm::Mode>> labels =
      eacm.ExtractLabels(dag.node_count(), object, right);
  return Dominance(dag, labels, subject, default_rule, preference, stats);
}

}  // namespace ucr::core
