#ifndef UCR_CORE_MIXED_SYSTEM_H_
#define UCR_CORE_MIXED_SYSTEM_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/mixed.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/status.h"

namespace ucr::core {

/// \brief Facade over *mixed* subject+object hierarchies: the
/// user-facing counterpart of `AccessControlSystem` for deployments
/// where objects nest too (paper §6 future-work #2; semantics in
/// core/mixed.h).
///
/// Authorizations attach to ⟨subject, object, right⟩ where both the
/// subject and the object are nodes of their respective DAGs. Rights
/// are interned flat names (no right hierarchy). Queries resolve by
/// two-sided propagation and the unchanged 48-strategy Resolve().
///
/// Not thread-safe for mutation; move-only.
class MixedAccessControlSystem {
 public:
  /// Takes ownership of both hierarchies.
  MixedAccessControlSystem(graph::Dag subjects, graph::Dag objects);

  MixedAccessControlSystem(const MixedAccessControlSystem&) = delete;
  MixedAccessControlSystem& operator=(const MixedAccessControlSystem&) =
      delete;
  MixedAccessControlSystem(MixedAccessControlSystem&&) = default;
  MixedAccessControlSystem& operator=(MixedAccessControlSystem&&) = default;

  const graph::Dag& subjects() const { return subjects_; }
  const graph::Dag& objects() const { return objects_; }

  const Strategy& strategy() const { return strategy_; }
  void SetStrategy(const Strategy& strategy) {
    strategy_ = strategy.Canonical();
  }

  /// Grants/denies `right` on the object (sub)tree to the subject
  /// (sub)tree. Both names must exist in their hierarchies; the right
  /// is interned on first use. Contradicting re-grants fail.
  Status Grant(std::string_view subject, std::string_view object,
               std::string_view right);
  Status DenyAccess(std::string_view subject, std::string_view object,
                    std::string_view right);

  /// Removes the explicit pair authorization; false if absent.
  StatusOr<bool> Revoke(std::string_view subject, std::string_view object,
                        std::string_view right);

  /// Number of explicit pair authorizations.
  size_t authorization_count() const;

  /// Effective decision under the session strategy.
  StatusOr<acm::Mode> CheckAccess(std::string_view subject,
                                  std::string_view object,
                                  std::string_view right);

  /// Effective decision under an explicit strategy.
  StatusOr<acm::Mode> CheckAccess(std::string_view subject,
                                  std::string_view object,
                                  std::string_view right,
                                  const Strategy& strategy,
                                  ResolveTrace* trace = nullptr);

  /// All rights ever interned, in id order (for serialization).
  const std::vector<std::string>& rights() const { return right_names_; }

  /// Authorizations for one right, unordered.
  StatusOr<std::vector<MixedAuthorization>> AuthorizationsFor(
      std::string_view right) const;

 private:
  struct NodePair {
    graph::NodeId subject;
    graph::NodeId object;
    bool operator==(const NodePair&) const = default;
  };
  struct NodePairHash {
    size_t operator()(const NodePair& p) const {
      return (static_cast<uint64_t>(p.subject) << 32 | p.object) *
             0x9E3779B97F4A7C15ull;
    }
  };

  StatusOr<size_t> InternRight(std::string_view right);
  Status SetPair(std::string_view subject, std::string_view object,
                 std::string_view right, acm::Mode mode);

  graph::Dag subjects_;
  graph::Dag objects_;
  Strategy strategy_;
  std::vector<std::string> right_names_;
  std::unordered_map<std::string, size_t> right_ids_;
  /// Per right: (subject, object) -> mode.
  std::vector<std::unordered_map<NodePair, acm::Mode, NodePairHash>>
      entries_;
};

/// Serializes a mixed system: strategy line, [subjects], [objects],
/// [authorizations] with `auth <subject> <object> <right> <+|->` rows.
std::string SaveMixedSystemToText(const MixedAccessControlSystem& system);

/// Parses the `SaveMixedSystemToText` format.
StatusOr<MixedAccessControlSystem> LoadMixedSystemFromText(
    std::string_view text);

}  // namespace ucr::core

#endif  // UCR_CORE_MIXED_SYSTEM_H_
