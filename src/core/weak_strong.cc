#include "core/weak_strong.h"

#include <optional>
#include <vector>

#include "core/propagate.h"
#include "core/resolve.h"
#include "graph/ancestor_subgraph.h"

namespace ucr::core {

namespace {

using acm::Mode;
using acm::PropagatedMode;

}  // namespace

StatusOr<acm::Mode> WeakStrongDecide(
    const graph::Dag& dag,
    const std::vector<WeakStrongAuthorization>& authorizations,
    graph::NodeId subject) {
  if (subject >= dag.node_count()) {
    return Status::OutOfRange("subject id out of range");
  }
  std::vector<std::optional<Mode>> strong_labels(dag.node_count());
  std::vector<std::optional<Mode>> weak_labels(dag.node_count());
  for (const WeakStrongAuthorization& auth : authorizations) {
    if (auth.subject >= dag.node_count()) {
      return Status::OutOfRange("authorization references unknown subject");
    }
    auto& layer = auth.strong ? strong_labels : weak_labels;
    if (layer[auth.subject].has_value()) {
      if (*layer[auth.subject] == auth.mode) continue;
      return Status::InvalidArgument(
          "contradicting authorizations on one subject within a layer");
    }
    layer[auth.subject] = auth.mode;
  }

  const graph::AncestorSubgraph sub(dag, subject);

  // Strong layer: unconditional, distance-blind, must be consistent.
  // Note the seed-only view: 'd' markers from unlabeled roots are
  // dropped — defaults belong to the weak layer.
  {
    const RightsBag strong_bag = PropagateAggregated(sub, strong_labels);
    bool positive = false;
    bool negative = false;
    for (const RightsEntry& e : strong_bag.entries()) {
      if (e.mode == PropagatedMode::kPositive) positive = true;
      if (e.mode == PropagatedMode::kNegative) negative = true;
    }
    if (positive && negative) {
      return Status::FailedPrecondition(
          "conflicting strong authorizations reach subject '" +
          dag.name(subject) + "'");
    }
    if (positive) return Mode::kPositive;
    if (negative) return Mode::kNegative;
  }

  // Weak layer: the paper's §5 mapping — open default, most-specific
  // wins, residual conflicts deny: exactly D+LP-.
  const RightsBag weak_bag = PropagateAggregated(sub, weak_labels);
  UCR_ASSIGN_OR_RETURN(const Strategy d_plus_lp_minus,
                       ParseStrategy("D+LP-"));
  return Resolve(weak_bag, d_plus_lp_minus);
}

}  // namespace ucr::core
