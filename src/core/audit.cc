#include "core/audit.h"

#include <algorithm>

namespace ucr::core {

std::string MigrationReport::Summarize(const graph::Dag& dag,
                                       size_t sample) const {
  std::string out;
  out += "migration " + from.ToMnemonic() + " -> " + to.ToMnemonic() + ": ";
  out += std::to_string(granted_before) + "/" +
         std::to_string(subjects_audited) + " granted before, " +
         std::to_string(granted_after) + " after; " +
         std::to_string(gained.size()) + " gain, " +
         std::to_string(lost.size()) + " lose";
  auto list = [&](const char* label,
                  const std::vector<MigrationDelta>& deltas) {
    if (deltas.empty()) return;
    out += std::string("; ") + label + ":";
    for (size_t i = 0; i < deltas.size() && i < sample; ++i) {
      out += " " + dag.name(deltas[i].subject);
    }
    if (deltas.size() > sample) out += " ...";
  };
  list("gained", gained);
  list("lost", lost);
  return out;
}

StatusOr<MigrationReport> CompareStrategies(AccessControlSystem& system,
                                            acm::ObjectId object,
                                            acm::RightId right,
                                            const Strategy& from,
                                            const Strategy& to,
                                            const CompareOptions& options) {
  UCR_ASSIGN_OR_RETURN(
      const std::vector<acm::Mode> before,
      system.MaterializeEffectiveColumn(object, right, from));
  UCR_ASSIGN_OR_RETURN(const std::vector<acm::Mode> after,
                       system.MaterializeEffectiveColumn(object, right, to));

  MigrationReport report;
  report.from = from.Canonical();
  report.to = to.Canonical();
  report.object = object;
  report.right = right;
  const graph::Dag& dag = system.dag();
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    if (options.sinks_only && !dag.is_sink(v)) continue;
    ++report.subjects_audited;
    const bool b = before[v] == acm::Mode::kPositive;
    const bool a = after[v] == acm::Mode::kPositive;
    report.granted_before += b ? 1 : 0;
    report.granted_after += a ? 1 : 0;
    if (!b && a) {
      report.gained.push_back(MigrationDelta{v, before[v], after[v]});
    } else if (b && !a) {
      report.lost.push_back(MigrationDelta{v, before[v], after[v]});
    }
  }
  return report;
}

StatusOr<std::vector<StrategyPermissiveness>> RankStrategies(
    AccessControlSystem& system, acm::ObjectId object, acm::RightId right,
    const CompareOptions& options) {
  const graph::Dag& dag = system.dag();
  std::vector<StrategyPermissiveness> ranking;
  for (const Strategy& s : AllStrategies()) {
    UCR_ASSIGN_OR_RETURN(
        const std::vector<acm::Mode> column,
        system.MaterializeEffectiveColumn(object, right, s));
    StrategyPermissiveness entry;
    entry.strategy = s;
    for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
      if (options.sinks_only && !dag.is_sink(v)) continue;
      if (column[v] == acm::Mode::kPositive) ++entry.granted;
    }
    ranking.push_back(entry);
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const StrategyPermissiveness& a,
                      const StrategyPermissiveness& b) {
                     return a.granted > b.granted;
                   });
  return ranking;
}

}  // namespace ucr::core
