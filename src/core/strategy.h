#ifndef UCR_CORE_STRATEGY_H_
#define UCR_CORE_STRATEGY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ucr::core {

/// Default policy parameter (paper Fig. 4, `dRule`): how unlabeled
/// root subjects are treated.
enum class DefaultRule : uint8_t {
  kNone = 0,      ///< "0" — drop default tuples (no default policy).
  kPositive = 1,  ///< "+" — unlabeled roots default to grant.
  kNegative = 2,  ///< "-" — unlabeled roots default to deny.
};

/// Locality policy parameter (`lRule`): which propagated tuples
/// survive the distance filter.
enum class LocalityRule : uint8_t {
  kIdentity = 0,      ///< identity() — no locality policy; keep all rows.
  kMostSpecific = 1,  ///< min() — nearest authorization wins ("L").
  kMostGeneral = 2,   ///< max() — farthest authorization wins ("G", globality).
};

/// Majority policy parameter (`mRule`): when (if at all) tuples are
/// counted and a strict majority decides.
enum class MajorityRule : uint8_t {
  kSkip = 0,    ///< No majority policy.
  kBefore = 1,  ///< Count before the locality filter (mnemonics M[LG]?P).
  kAfter = 2,   ///< Count after the locality filter (mnemonics [LG]MP).
};

/// Preference policy parameter (`pRule`): the final, deterministic
/// arbiter. Always applied last; never optional.
enum class PreferenceRule : uint8_t {
  kPositive = 0,  ///< "+" wins remaining conflicts (open systems).
  kNegative = 1,  ///< "-" wins remaining conflicts (closed systems).
};

/// \brief One combined conflict-resolution strategy instance — the
/// four parameters of Algorithm Resolve() (paper Fig. 4).
///
/// Of the 3*3*3*2 = 54 raw parameter combinations, 48 are *canonical*
/// strategy instances (paper §2.2): when no locality policy is present
/// (`kIdentity`), counting before or after the no-op filter is the
/// same strategy, so `kAfter` + `kIdentity` is normalized to `kBefore`.
///
/// Mnemonics follow the paper: optional `D+`/`D-`, then one of
/// `LM`/`GM`/`ML`/`MG`/`L`/`G`/`M`/`` (L = most specific, G = most
/// general; M's position encodes before/after), then `P+`/`P-`.
/// Examples: "D+LMP-", "D-GP+", "MGP-", "P+".
struct Strategy {
  DefaultRule default_rule = DefaultRule::kNone;
  LocalityRule locality_rule = LocalityRule::kIdentity;
  MajorityRule majority_rule = MajorityRule::kSkip;
  PreferenceRule preference_rule = PreferenceRule::kNegative;

  bool operator==(const Strategy& other) const = default;

  /// True iff the instance is one of the 48 canonical strategies
  /// (i.e., not the `kAfter`+`kIdentity` alias).
  bool IsCanonical() const;

  /// Returns the canonical equivalent (normalizes the alias).
  Strategy Canonical() const;

  /// Renders the paper mnemonic, e.g. "D+LMP-".
  std::string ToMnemonic() const;

  /// Dense index of the canonical form in [0, 48); stable across runs.
  /// Useful as a cache key component.
  uint8_t CanonicalIndex() const;
};

/// Parses a paper mnemonic (see `Strategy`). Whitespace-intolerant and
/// case-sensitive by design: mnemonics are identifiers.
StatusOr<Strategy> ParseStrategy(std::string_view mnemonic);

/// All 48 canonical strategy instances in a fixed, documented order:
/// default rule (none, +, -) × policy shape (P, M, L, G, LM, GM, ML,
/// MG) × preference (+, -). `AllStrategies()[s.CanonicalIndex()] == s`.
const std::vector<Strategy>& AllStrategies();

/// Named constants for the strategies the paper discusses explicitly.
namespace strategies {
/// "Denial takes precedence" with most-specific locality — the classic
/// closed-system strategy (Bertino et al.'s weak/strong semantics is
/// D+LP- in this framework, paper §5).
StatusOr<Strategy> DPlusLPMinus();
}  // namespace strategies

}  // namespace ucr::core

#endif  // UCR_CORE_STRATEGY_H_
