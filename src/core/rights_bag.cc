#include "core/rights_bag.h"

#include <algorithm>

namespace ucr::core {

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

bool EntryLess(const RightsEntry& a, const RightsEntry& b) {
  if (a.dis != b.dis) return a.dis < b.dis;
  return a.mode < b.mode;
}

}  // namespace

void RightsBag::Add(uint32_t dis, acm::PropagatedMode mode,
                    uint64_t multiplicity) {
  if (multiplicity == 0) return;
  entries_.push_back(RightsEntry{dis, mode, multiplicity});
}

void RightsBag::Normalize() {
  std::sort(entries_.begin(), entries_.end(), EntryLess);
  size_t out = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].dis == entries_[i].dis &&
        entries_[out - 1].mode == entries_[i].mode) {
      entries_[out - 1].multiplicity =
          SatAdd(entries_[out - 1].multiplicity, entries_[i].multiplicity);
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

uint64_t RightsBag::TotalTuples() const {
  uint64_t total = 0;
  for (const auto& e : entries_) total = SatAdd(total, e.multiplicity);
  return total;
}

std::string RightsBag::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(entries_[i].dis);
    out += ':';
    out += acm::PropagatedModeToChar(entries_[i].mode);
    if (entries_[i].multiplicity != 1) {
      out += " x" + std::to_string(entries_[i].multiplicity);
    }
  }
  out += "}";
  return out;
}

}  // namespace ucr::core
