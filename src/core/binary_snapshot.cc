#include "core/binary_snapshot.h"

#include "core/propagate.h"
#include "core/strategy.h"
#include "graph/io.h"
#include "util/binio.h"
#include "util/crc32.h"
#include "util/fs.h"

namespace ucr::core {

namespace {

constexpr char kMagic[] = "UCRSNAP1";
constexpr size_t kMagicSize = 8;
constexpr uint32_t kVersion = 1;
/// magic + version + lsn + strategy + mode + reserved + two
/// (size, crc) section descriptors + header crc.
constexpr size_t kHeaderSize = 8 + 4 + 8 + 1 + 1 + 2 + (8 + 4) * 2 + 4;

}  // namespace

std::string EncodeBinarySnapshot(const AccessControlSystem& system,
                                 uint64_t lsn) {
  std::string dag_bytes;
  graph::AppendDagBinary(system.dag(), &dag_bytes);
  std::string acm_bytes;
  acm::AppendAcmBinary(system.eacm(), &acm_bytes);

  std::string out;
  out.reserve(kHeaderSize + dag_bytes.size() + acm_bytes.size());
  out.append(kMagic, kMagicSize);
  bin::AppendU32(kVersion, &out);
  bin::AppendU64(lsn, &out);
  out.push_back(static_cast<char>(system.strategy().CanonicalIndex()));
  out.push_back(static_cast<char>(system.propagation_mode()));
  bin::AppendU16(0, &out);  // Reserved.
  bin::AppendU64(dag_bytes.size(), &out);
  bin::AppendU32(Crc32(dag_bytes), &out);
  bin::AppendU64(acm_bytes.size(), &out);
  bin::AppendU32(Crc32(acm_bytes), &out);
  bin::AppendU32(Crc32(out), &out);  // Header CRC covers all the above.
  out += dag_bytes;
  out += acm_bytes;
  return out;
}

StatusOr<AccessControlSystem> DecodeBinarySnapshot(std::string_view bytes,
                                                   SystemOptions options,
                                                   SnapshotMeta* meta) {
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("snapshot: truncated header");
  }
  if (std::string_view(bytes.data(), kMagicSize) !=
      std::string_view(kMagic, kMagicSize)) {
    return Status::Corruption("snapshot: bad magic");
  }
  bin::Reader header(bytes.data() + kMagicSize, kHeaderSize - kMagicSize);
  uint32_t version = 0;
  uint64_t lsn = 0;
  std::string_view strategy_byte;
  std::string_view mode_byte;
  uint16_t reserved = 0;
  uint64_t dag_size = 0;
  uint32_t dag_crc = 0;
  uint64_t acm_size = 0;
  uint32_t acm_crc = 0;
  uint32_t header_crc = 0;
  header.ReadU32(&version);
  header.ReadU64(&lsn);
  header.ReadBytes(1, &strategy_byte);
  header.ReadBytes(1, &mode_byte);
  header.ReadU16(&reserved);
  header.ReadU64(&dag_size);
  header.ReadU32(&dag_crc);
  header.ReadU64(&acm_size);
  header.ReadU32(&acm_crc);
  header.ReadU32(&header_crc);
  if (!header.ok()) return Status::Corruption("snapshot: truncated header");
  if (Crc32(bytes.data(), kHeaderSize - 4) != header_crc) {
    return Status::Corruption("snapshot: header checksum mismatch");
  }
  if (version != kVersion) {
    // Versioning exists exactly so an old binary refuses a newer format
    // cleanly instead of misparsing it.
    return Status::Corruption("snapshot: unsupported version " +
                              std::to_string(version) + " (this build reads " +
                              std::to_string(kVersion) + ")");
  }
  const auto strategy_index = static_cast<uint8_t>(strategy_byte[0]);
  const auto raw_mode = static_cast<uint8_t>(mode_byte[0]);
  if (strategy_index >= AllStrategies().size() ||
      raw_mode > static_cast<uint8_t>(PropagationMode::kSecondWins)) {
    return Status::Corruption("snapshot: invalid strategy or mode");
  }
  const size_t body = bytes.size() - kHeaderSize;
  if (dag_size > body || acm_size > body || dag_size + acm_size != body) {
    return Status::Corruption("snapshot: section sizes do not match file");
  }
  const std::string_view dag_bytes = bytes.substr(kHeaderSize, dag_size);
  const std::string_view acm_bytes =
      bytes.substr(kHeaderSize + dag_size, acm_size);
  if (Crc32(dag_bytes) != dag_crc) {
    return Status::Corruption("snapshot: graph section checksum mismatch");
  }
  if (Crc32(acm_bytes) != acm_crc) {
    return Status::Corruption("snapshot: matrix section checksum mismatch");
  }

  UCR_ASSIGN_OR_RETURN(graph::Dag dag, graph::DagFromBinary(dag_bytes));
  UCR_ASSIGN_OR_RETURN(acm::ExplicitAcm eacm,
                       acm::AcmFromBinary(acm_bytes, dag.node_count()));

  // Strategy and propagation mode are saved state, not configuration.
  options.default_strategy = AllStrategies()[strategy_index];
  options.propagation_mode = static_cast<PropagationMode>(raw_mode);
  if (meta != nullptr) {
    meta->lsn = lsn;
    meta->strategy_index = strategy_index;
    meta->propagation_mode = raw_mode;
  }
  return AccessControlSystem(std::move(dag), std::move(eacm), options);
}

Status WriteBinarySnapshot(const AccessControlSystem& system, uint64_t lsn,
                           const std::string& path) {
  return WriteFileAtomic(path, EncodeBinarySnapshot(system, lsn));
}

StatusOr<AccessControlSystem> LoadBinarySnapshot(const std::string& path,
                                                 SystemOptions options,
                                                 SnapshotMeta* meta) {
  UCR_ASSIGN_OR_RETURN(MappedFile mapped, MappedFile::Open(path));
  return DecodeBinarySnapshot(mapped.bytes(), options, meta);
}

}  // namespace ucr::core
