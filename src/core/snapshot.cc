#include "core/snapshot.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <thread>

#include "core/flat_propagate.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace ucr::core {

namespace {

/// Epoch/snapshot telemetry (DESIGN.md §11). The gauge names are also
/// read back by name in obs/http_exporter.cc for the /varz epoch line,
/// so the two call sites must agree on them.
struct SnapshotMetrics {
  obs::Gauge& epoch_current = obs::Registry::Global().GetGauge(
      "ucr_epoch_current", "Epoch of the currently published snapshot");
  obs::Gauge& epoch_readers = obs::Registry::Global().GetGauge(
      "ucr_epoch_readers", "Reader pins currently held across all epochs");
  obs::Gauge& epoch_lag = obs::Registry::Global().GetGauge(
      "ucr_epoch_lag",
      "Master-state mutations applied but not yet visible in the published "
      "snapshot");
  obs::Counter& published = obs::Registry::Global().GetCounter(
      "ucr_epoch_published_total", "Snapshots published");
  obs::Counter& retired = obs::Registry::Global().GetCounter(
      "ucr_epoch_retired_total",
      "Snapshots destroyed after their readers drained");
  obs::Histogram& publish_wait_ns = obs::Registry::Global().GetHistogram(
      "ucr_epoch_publish_wait_ns",
      "Writer wait for the recycled epoch slot's readers to drain (ns)");
  obs::Histogram& build_ns = obs::Registry::Global().GetHistogram(
      "ucr_epoch_build_ns",
      "Snapshot construction time, carry-over warming included (ns)");
  obs::Counter& carryover_resolution = obs::Registry::Global().GetCounter(
      "ucr_epoch_carryover_resolution_total",
      "Resolved decisions carried into a new snapshot by the generation/"
      "column-epoch filter");
  obs::Counter& carryover_subgraphs = obs::Registry::Global().GetCounter(
      "ucr_epoch_carryover_subgraphs_total",
      "Ancestor sub-graphs re-extracted warm into a new snapshot");
  obs::Counter& queries = obs::Registry::Global().GetCounter(
      "ucr_snapshot_queries_total",
      "Queries answered by the lock-free snapshot path");
  obs::Histogram& latency = obs::Registry::Global().GetHistogram(
      "ucr_snapshot_query_latency_ns",
      "SnapshotResolveAccess latency, table hits included (ns)");
  obs::Counter& resolution_hits = obs::Registry::Global().GetCounter(
      "ucr_snapshot_resolution_hits_total",
      "Snapshot resolution-table hits");
  obs::Counter& resolution_misses = obs::Registry::Global().GetCounter(
      "ucr_snapshot_resolution_misses_total",
      "Snapshot resolution-table misses");
  obs::Counter& subgraph_hits = obs::Registry::Global().GetCounter(
      "ucr_snapshot_subgraph_hits_total", "Snapshot sub-graph table hits");
  obs::Counter& subgraph_misses = obs::Registry::Global().GetCounter(
      "ucr_snapshot_subgraph_misses_total",
      "Snapshot sub-graph table misses");
  obs::Counter& indexed = obs::Registry::Global().GetCounter(
      "ucr_snapshot_indexed_queries_total",
      "Snapshot queries whose sink bag was composed from the reachability "
      "index (no sub-graph extraction)");
};

SnapshotMetrics& GetSnapshotMetrics() {
  static SnapshotMetrics* metrics = new SnapshotMetrics();
  return *metrics;
}

size_t RoundUpPow2(size_t n) {
  return n < 2 ? 2 : std::bit_ceil(n);
}

/// Same Fig. 4 payload as the other tracers; the snapshot path is the
/// hot-path engine, so fast_path is set.
[[gnu::noinline, gnu::cold]] void RecordSnapshotTrace(
    graph::NodeId subject, acm::ObjectId object, acm::RightId right,
    const Strategy& canonical, bool resolution_hit, bool subgraph_hit,
    uint64_t t_start, uint64_t t_extract, uint64_t t_propagate, uint64_t t_end,
    const ResolveTrace* trace, acm::Mode mode,
    const obs::PhaseBreakdown& phases) {
  obs::QueryTraceRecord record;
  record.subject = subject;
  record.object = object;
  record.right = right;
  record.strategy_index = canonical.CanonicalIndex();
  record.fast_path = true;
  record.resolution_cache_hit = resolution_hit;
  record.subgraph_cache_hit = subgraph_hit;
  if (!resolution_hit) {
    record.extract_ns = t_extract - t_start;
    record.propagate_ns = t_propagate - t_extract;
    record.resolve_ns = t_end - t_propagate;
  }
  record.total_ns = t_end - t_start;
  record.phases = phases;
  if (trace != nullptr) {
    record.has_majority = trace->c1.has_value();
    record.c1 = trace->c1.value_or(0);
    record.c2 = trace->c2.value_or(0);
    record.auth_computed = trace->auth_computed;
    record.auth_has_positive = trace->auth_has_positive;
    record.auth_has_negative = trace->auth_has_negative;
    record.returned_line = trace->returned_line;
  }
  record.granted = mode == acm::Mode::kPositive;
  const uint64_t sequence = obs::QueryTracer::Global().Record(record);
  // Exemplar: link this sample's tail-latency bucket to its trace so
  // /tracez can recover the full Fig. 4 derivation.
  GetSnapshotMetrics().latency.RecordExemplar(record.total_ns, sequence,
                                              subject, object, right);
}

}  // namespace

// ---------------------------------------------------------------------------
// EpochResolutionTable

EpochResolutionTable::EpochResolutionTable(size_t capacity)
    : slots_(RoundUpPow2(capacity)) {
  mask_ = slots_.size() - 1;
  max_load_ = slots_.size() - slots_.size() / 4;  // 3/4 load cap.
}

std::optional<acm::Mode> EpochResolutionTable::Lookup(graph::NodeId subject,
                                                      acm::ObjectId object,
                                                      acm::RightId right,
                                                      uint8_t strategy) const {
  // Epoch-table probes share the cache-probe phase (DESIGN.md §14).
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  const uint64_t triple = PackTriple(subject, object, right);
  size_t idx = SeedIndex(triple, strategy);
  for (size_t i = 0; i < kMaxProbes; ++i, idx = (idx + 1) & mask_) {
    const Slot& slot = slots_[idx];
    const uint64_t key = slot.key.load(std::memory_order_acquire);
    if (key == kEmptyKey) return std::nullopt;
    if (key != triple) continue;
    const uint64_t value = slot.value.load(std::memory_order_acquire);
    // Not ready (a racer claimed the key but has not published the
    // value yet) or a different strategy's entry: either way this slot
    // is not ours — keep probing.
    if ((value & kReadyBit) == 0) continue;
    if (static_cast<uint8_t>(value & 0xFF) != strategy) continue;
    return (value & kPositiveBit) != 0 ? acm::Mode::kPositive
                                       : acm::Mode::kNegative;
  }
  return std::nullopt;
}

bool EpochResolutionTable::TryStore(graph::NodeId subject,
                                    acm::ObjectId object, acm::RightId right,
                                    uint8_t strategy, acm::Mode mode) {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  if (size_.load(std::memory_order_relaxed) >= max_load_) return false;
  const uint64_t triple = PackTriple(subject, object, right);
  const uint64_t value =
      kReadyBit |
      (mode == acm::Mode::kPositive ? kPositiveBit : uint64_t{0}) | strategy;
  size_t idx = SeedIndex(triple, strategy);
  for (size_t i = 0; i < kMaxProbes; ++i, idx = (idx + 1) & mask_) {
    Slot& slot = slots_[idx];
    uint64_t key = slot.key.load(std::memory_order_acquire);
    if (key == kEmptyKey) {
      if (slot.key.compare_exchange_strong(key, triple,
                                           std::memory_order_acq_rel)) {
        slot.value.store(value, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // `key` now holds the racer's claim; fall through to examine it.
    }
    if (key == triple) {
      const uint64_t existing = slot.value.load(std::memory_order_acquire);
      if ((existing & kReadyBit) != 0 &&
          static_cast<uint8_t>(existing & 0xFF) == strategy) {
        // A racer stored this very entry; decisions are deterministic,
        // so the values are identical and the store is already done.
        return true;
      }
      // In-flight store or another strategy's entry: collision.
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// EpochSubgraphTable

EpochSubgraphTable::EpochSubgraphTable(size_t capacity)
    : slots_(RoundUpPow2(capacity)) {
  mask_ = slots_.size() - 1;
  max_load_ = slots_.size() - slots_.size() / 4;
}

EpochSubgraphTable::~EpochSubgraphTable() {
  for (Slot& slot : slots_) {
    delete slot.sub.load(std::memory_order_acquire);
  }
}

const graph::AncestorSubgraph* EpochSubgraphTable::Find(
    graph::NodeId subject) const {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  const uint64_t key = static_cast<uint64_t>(subject) + 1;
  size_t idx = SeedIndex(subject);
  for (size_t i = 0; i < kMaxProbes; ++i, idx = (idx + 1) & mask_) {
    const Slot& slot = slots_[idx];
    const uint64_t existing = slot.key.load(std::memory_order_acquire);
    if (existing == 0) return nullptr;
    if (existing != key) continue;
    // The key is claimed before the pointer is published; a null read
    // here means the installer is mid-flight — treat as a miss.
    return slot.sub.load(std::memory_order_acquire);
  }
  return nullptr;
}

const graph::AncestorSubgraph* EpochSubgraphTable::Install(
    graph::NodeId subject,
    std::unique_ptr<const graph::AncestorSubgraph>& sub) const {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kCacheProbe);
  const uint64_t key = static_cast<uint64_t>(subject) + 1;
  size_t idx = SeedIndex(subject);
  for (size_t i = 0; i < kMaxProbes; ++i, idx = (idx + 1) & mask_) {
    Slot& slot = slots_[idx];
    uint64_t existing = slot.key.load(std::memory_order_acquire);
    if (existing == 0) {
      if (size_.load(std::memory_order_relaxed) >= max_load_) break;
      if (slot.key.compare_exchange_strong(existing, key,
                                           std::memory_order_acq_rel)) {
        const graph::AncestorSubgraph* installed = sub.release();
        slot.sub.store(installed, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return installed;
      }
      // Lost the claim; `existing` holds the racer's key.
    }
    if (existing != key) continue;
    const graph::AncestorSubgraph* resident =
        slot.sub.load(std::memory_order_acquire);
    // Racer's pointer store still in flight: use our own extraction.
    return resident != nullptr ? resident : sub.get();
  }
  return sub.get();
}

// ---------------------------------------------------------------------------
// SnapshotManager

SnapshotManager::SnapshotManager() = default;

SnapshotManager::~SnapshotManager() {
  for (Slot& slot : slots_) {
    assert(slot.readers.load(std::memory_order_relaxed) == 0 &&
           "SnapshotManager destroyed with live reader pins");
    delete slot.snapshot.load(std::memory_order_acquire);
  }
}

void SnapshotManager::ReadPin::Release() {
  if (readers_ == nullptr) return;
  readers_->fetch_sub(1, std::memory_order_release);
  if constexpr (obs::kEnabled) GetSnapshotMetrics().epoch_readers.Sub(1);
  readers_ = nullptr;
  snapshot_ = nullptr;
}

SnapshotManager::ReadPin SnapshotManager::Pin() const {
  for (;;) {
    const uint64_t e = current_epoch_.load();  // seq_cst
    if (e == 0) return ReadPin();
    Slot& slot = slots_[e % kEpochSlots];
    slot.readers.fetch_add(1);  // seq_cst
    // Re-check: the writer recycles this slot only for epoch
    // e + kEpochSlots, and it stores e + kEpochSlots - 1 (at the
    // latest) into current_epoch_ *before* its drain load of
    // `readers`. In the seq_cst total order either our fetch_add
    // precedes that drain load — the writer waits for us — or the
    // drain load precedes it, in which case this re-load is ordered
    // after the writer's earlier epoch store and cannot still read
    // `e`; we back out and retry on the newer epoch. Epochs are
    // 64-bit monotonic, so a recycled slot can never alias the value
    // we pinned.
    if (current_epoch_.load() == e) {
      const HierarchySnapshot* snap =
          slot.snapshot.load(std::memory_order_acquire);
      if constexpr (obs::kEnabled) GetSnapshotMetrics().epoch_readers.Add(1);
      return ReadPin(snap, &slot.readers);
    }
    slot.readers.fetch_sub(1, std::memory_order_release);
  }
}

void SnapshotManager::Publish(std::unique_ptr<const HierarchySnapshot> next) {
  assert(next != nullptr);
  const uint64_t e = next->epoch;
  assert(e == current_epoch_.load(std::memory_order_relaxed) + 1 &&
         "snapshots must be published in epoch order");
  Slot& slot = slots_[e % kEpochSlots];
  // Reclamation rule: the slot last held epoch e - kEpochSlots; wait
  // for its readers to drain before destroying that snapshot. Readers
  // pin for one query, so a wait here means a reader is kEpochSlots
  // publications behind — rare by construction, bounded by the
  // slowest in-flight query.
  if constexpr (obs::kEnabled) {
    uint64_t waited = 0;
    if (slot.readers.load() != 0) {
      const uint64_t t0 = obs::NowNs();
      while (slot.readers.load() != 0) std::this_thread::yield();
      waited = obs::NowNs() - t0;
    }
    GetSnapshotMetrics().publish_wait_ns.Observe(waited);
  } else {
    while (slot.readers.load() != 0) std::this_thread::yield();
  }
  const HierarchySnapshot* old = slot.snapshot.load(std::memory_order_relaxed);
  if (old != nullptr) {
    delete old;
    retired_total_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) GetSnapshotMetrics().retired.Inc();
  }
  slot.snapshot.store(next.release(), std::memory_order_release);
  current_epoch_.store(e);  // seq_cst: see Pin().
  published_total_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    GetSnapshotMetrics().published.Inc();
    GetSnapshotMetrics().epoch_current.Set(static_cast<int64_t>(e));
  }
}

uint64_t SnapshotManager::active_readers() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.readers.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// SnapshotResolveAccess

StatusOr<acm::Mode> SnapshotResolveAccess(const HierarchySnapshot& snapshot,
                                          graph::NodeId subject,
                                          acm::ObjectId object,
                                          acm::RightId right,
                                          const Strategy& strategy,
                                          const SnapshotReadOptions& options,
                                          ResolveTrace* trace,
                                          PropagateStats* stats) {
  if (subject >= snapshot.dag.node_count()) {
    return Status::OutOfRange("subject id " + std::to_string(subject) +
                              " out of range");
  }
  if (object >= snapshot.eacm.object_count()) {
    return Status::OutOfRange("object id out of range");
  }
  if (right >= snapshot.eacm.right_count()) {
    return Status::OutOfRange("right id out of range");
  }
  const Strategy canonical = strategy.Canonical();
  const uint8_t strategy_index = canonical.CanonicalIndex();
  const bool sampled = obs::QueryTracer::ShouldSample();
  const uint64_t t_start = sampled ? obs::NowNs() : 0;
  // Phase-attribution owner scope (DESIGN.md §14).
  obs::ScopedPhaseCollection phase_scope(sampled);

  // A memoized decision has no derivation, so a caller asking for the
  // trace or stats always re-derives (and skips the redundant store:
  // the entry is necessarily present already or will be stored by an
  // untraced query).
  const bool want_derivation = trace != nullptr || stats != nullptr;
  if (options.use_resolution_table && !want_derivation) {
    const std::optional<acm::Mode> cached =
        snapshot.resolution.Lookup(subject, object, right, strategy_index);
    if constexpr (obs::kEnabled) {
      (cached.has_value() ? GetSnapshotMetrics().resolution_hits
                          : GetSnapshotMetrics().resolution_misses)
          .Inc();
    }
    if (cached.has_value()) {
      if constexpr (obs::kEnabled) {
        GetSnapshotMetrics().queries.Inc();
        if (sampled) [[unlikely]] {
          const uint64_t t_end = obs::NowNs();
          GetSnapshotMetrics().latency.Observe(t_end - t_start);
          RecordSnapshotTrace(subject, object, right, canonical,
                              /*resolution_hit=*/true, /*subgraph_hit=*/false,
                              t_start, t_start, t_start, t_end, nullptr,
                              *cached, phase_scope.Snapshot());
        }
      }
      return *cached;
    }
  }

  PropagateOptions prop_options;
  prop_options.propagation_mode = snapshot.propagation_mode;
  HotPath& hot = HotPath::ThreadLocal();

  std::span<const RightsEntry> sink_bag;
  bool subgraph_hit = false;
  uint64_t t_extract = 0;
  uint64_t t_propagate = 0;
  // The local extraction (sub-graph table miss lost to a racer, or
  // table full) lives until the propagation below is done with it.
  std::unique_ptr<const graph::AncestorSubgraph> local;
  // Indexed compose path (DESIGN.md §12): the snapshot's index was
  // built for exactly this (dag, eacm) generation, so the usability
  // check only rejects on the non-expressible cases (stats requested,
  // kSecondWins, budget-tripped build). The index is immutable and
  // shared — still lock-free.
  ResolveAccessOptions reach_gate;
  reach_gate.propagation_mode = snapshot.propagation_mode;
  reach_gate.use_reachability_index = options.use_reachability_index;
  if (stats == nullptr &&
      ReachIndexUsable(snapshot.reach_index.get(), snapshot.dag,
                       snapshot.eacm, reach_gate)) {
    sink_bag = ComposeIndexedSinkBag(*snapshot.reach_index, subject, object,
                                     right, snapshot.propagation_mode);
    t_extract = sampled ? obs::NowNs() : 0;
    t_propagate = t_extract;
    if constexpr (obs::kEnabled) GetSnapshotMetrics().indexed.Inc();
  } else if (options.use_subgraph_table) {
    hot.propagator.SetLabels(snapshot.eacm.Column(object, right),
                             snapshot.dag.node_count());
    const graph::AncestorSubgraph* sub = snapshot.subgraphs.Find(subject);
    subgraph_hit = sub != nullptr;
    if (sub == nullptr) {
      local = std::make_unique<const graph::AncestorSubgraph>(
          snapshot.dag, subject, hot.scratch);
      sub = snapshot.subgraphs.Install(subject, local);
    }
    if constexpr (obs::kEnabled) {
      (subgraph_hit ? GetSnapshotMetrics().subgraph_hits
                    : GetSnapshotMetrics().subgraph_misses)
          .Inc();
    }
    t_extract = sampled ? obs::NowNs() : 0;
    sink_bag = hot.propagator.PropagateSink(*sub, prop_options, stats);
  } else {
    hot.propagator.SetLabels(snapshot.eacm.Column(object, right),
                             snapshot.dag.node_count());
    const graph::ScratchSubgraphView view =
        hot.scratch.Extract(snapshot.dag, subject);
    t_extract = sampled ? obs::NowNs() : 0;
    sink_bag = hot.propagator.PropagateSink(view, prop_options, stats);
  }
  t_propagate = sampled ? obs::NowNs() : 0;

  ResolveTrace sampled_trace;
  ResolveTrace* trace_out =
      trace != nullptr ? trace : (sampled ? &sampled_trace : nullptr);
  const acm::Mode mode = ResolveEntries(sink_bag, canonical, trace_out);

  if (options.use_resolution_table && !want_derivation) {
    snapshot.resolution.TryStore(subject, object, right, strategy_index, mode);
  }
  if constexpr (obs::kEnabled) {
    GetSnapshotMetrics().queries.Inc();
    if (sampled) [[unlikely]] {
      const uint64_t t_end = obs::NowNs();
      GetSnapshotMetrics().latency.Observe(t_end - t_start);
      RecordSnapshotTrace(subject, object, right, canonical,
                          /*resolution_hit=*/false, subgraph_hit, t_start,
                          t_extract, t_propagate, t_end, trace_out, mode,
                          phase_scope.Snapshot());
    }
  }
  return mode;
}

// ---------------------------------------------------------------------------
// BuildSnapshot

std::unique_ptr<const HierarchySnapshot> BuildSnapshot(
    const graph::Dag& dag, const acm::ExplicitAcm& eacm,
    const Strategy& default_strategy, PropagationMode propagation_mode,
    uint64_t epoch, const HierarchySnapshot* previous,
    size_t resolution_capacity,
    std::shared_ptr<const graph::ReachabilityIndex> reach_index,
    SnapshotBuildStats* stats) {
  const uint64_t t0 = obs::kEnabled ? obs::NowNs() : 0;
  // The sub-graph table is subject-keyed, so node count bounds its
  // useful size; the cap keeps a worst-case snapshot's slot array at
  // 16 MiB even for very large hierarchies.
  const size_t subgraph_capacity =
      std::min<size_t>(RoundUpPow2(std::max<size_t>(dag.node_count(), 256)),
                       size_t{1} << 20);
  auto snapshot = std::make_unique<HierarchySnapshot>(
      epoch, dag, eacm, default_strategy, propagation_mode,
      resolution_capacity, subgraph_capacity, std::move(reach_index));

  SnapshotBuildStats build_stats;
  if (previous != nullptr) {
    // Carry-over warming: a decision is still derivable iff the
    // subject's ancestor set survived every hierarchy edit since the
    // previous snapshot (the PR 5 generation stamps say exactly that)
    // and its column of the explicit matrix is untouched.
    previous->resolution.ForEach([&](graph::NodeId s, acm::ObjectId o,
                                     acm::RightId r, uint8_t strategy,
                                     acm::Mode mode) {
      const bool alive =
          s < dag.node_count() &&
          dag.node_generation(s) <= previous->dag_generation &&
          o < eacm.object_count() && r < eacm.right_count() &&
          eacm.ColumnEpoch(o, r) == previous->eacm.ColumnEpoch(o, r);
      if (alive && snapshot->resolution.TryStore(s, o, r, strategy, mode)) {
        ++build_stats.resolution_carried;
      } else {
        ++build_stats.resolution_dropped;
      }
    });
    // Sub-graphs are re-extracted rather than copied: an
    // AncestorSubgraph holds a back pointer into the graph it was cut
    // from, and this snapshot owns its own graph copy. The extraction
    // runs on the writer's warm scratch arena, off the readers' path.
    graph::SubgraphScratch& scratch = HotPath::ThreadLocal().scratch;
    previous->subgraphs.ForEachSubject([&](graph::NodeId s) {
      if (s >= dag.node_count() ||
          dag.node_generation(s) > previous->dag_generation) {
        ++build_stats.subgraphs_dropped;
        return;
      }
      std::unique_ptr<const graph::AncestorSubgraph> sub =
          std::make_unique<const graph::AncestorSubgraph>(snapshot->dag, s,
                                                          scratch);
      snapshot->subgraphs.Install(s, sub);
      if (sub == nullptr) {
        ++build_stats.subgraphs_carried;
      } else {
        ++build_stats.subgraphs_dropped;  // Table full: benign skip.
      }
    });
  }
  if constexpr (obs::kEnabled) {
    SnapshotMetrics& m = GetSnapshotMetrics();
    m.build_ns.Observe(obs::NowNs() - t0);
    if (build_stats.resolution_carried > 0) {
      m.carryover_resolution.Inc(build_stats.resolution_carried);
    }
    if (build_stats.subgraphs_carried > 0) {
      m.carryover_subgraphs.Inc(build_stats.subgraphs_carried);
    }
  }
  if (stats != nullptr) *stats = build_stats;
  return snapshot;
}

}  // namespace ucr::core
