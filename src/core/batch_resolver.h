#ifndef UCR_CORE_BATCH_RESOLVER_H_
#define UCR_CORE_BATCH_RESOLVER_H_

#include <span>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/propagate.h"
#include "core/sharded_cache.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/dag.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ucr::core {

/// Options for `BatchResolver`.
struct BatchResolverOptions {
  /// Total executors per batch: `threads - 1` pool workers plus the
  /// calling thread. 0 and 1 both mean "resolve inline". Clamped to
  /// `std::thread::hardware_concurrency()` at construction.
  size_t threads = 1;

  /// Resolve cache misses through the per-thread allocation-free hot
  /// path (scratch arena + flat propagation + streaming resolve;
  /// DESIGN.md §7). Decisions are bit-identical to the classic
  /// engines; disable to force the classic path as a differential
  /// oracle.
  bool use_fast_path = true;

  /// Share derived decisions across workers (sharded, epoch-guarded).
  bool enable_resolution_cache = true;

  /// Share extracted ancestor sub-graphs across workers.
  bool enable_subgraph_cache = true;

  /// Propagation extension mode applied to every query.
  PropagationMode propagation_mode = PropagationMode::kBoth;
};

/// \brief Multi-threaded batch query evaluation over one system's
/// immutable inputs — the serving-path counterpart of
/// `AccessControlSystem::CheckAccess`.
///
/// Where `CheckAccessBatch`'s parallel path resolves every query from
/// scratch (the facade's caches are unsynchronized), a `BatchResolver`
/// owns *sharded, thread-safe* caches, so its workers share warm
/// sub-graphs and decisions exactly like the serial facade does — and
/// the caches stay warm across batches, which is what a long-running
/// server wants. Decisions are deterministic, therefore bit-identical
/// to the serial engine's for any thread count (the differential tests
/// assert this for all 48 strategies).
///
/// The resolver holds const references to the hierarchy and explicit
/// matrix: both must outlive it and must not be mutated while a batch
/// is in flight. Mutations *between* batches are safe — resolution
/// entries are epoch-guarded per column and lapse on their own for
/// rights edits, and a hierarchy edit's affected set (the out-param of
/// `AccessControlSystem::AddMembership`/`RemoveMembership`/
/// `ApplyMutations`) must be forwarded to `InvalidateSubjects` before
/// the next batch so stale sub-graphs and decisions are dropped
/// (DESIGN.md §10).
class BatchResolver {
 public:
  using Query = AccessControlSystem::AccessQuery;

  BatchResolver(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                BatchResolverOptions options = {});

  /// Convenience: binds to `system`'s hierarchy, matrix, and
  /// propagation mode, so decisions match `system.CheckAccess`.
  BatchResolver(const AccessControlSystem& system, size_t threads);

  /// \brief Binds to an epoch-published snapshot (DESIGN.md §11): the
  /// resolver reads `snapshot`'s immutable hierarchy, matrix, and
  /// propagation mode, so decisions match
  /// `AccessControlSystem::CheckAccessSnapshot` against that epoch.
  ///
  /// The caller must hold a `SnapshotManager::ReadPin` on the snapshot
  /// for the resolver's whole lifetime — the pin is what keeps the
  /// epoch's storage alive past subsequent publications. In exchange
  /// the §10 maintenance contract disappears: a snapshot never
  /// mutates, so `InvalidateSubjects` is never needed and the caches
  /// stay valid forever. `options.propagation_mode` is overridden by
  /// the snapshot's own mode (a snapshot decision is only meaningful
  /// under the mode it was published with).
  BatchResolver(const HierarchySnapshot& snapshot,
                BatchResolverOptions options = {});

  /// \brief Resolves every query under `strategy`. Results align
  /// positionally with `queries`.
  ///
  /// Validates all ids up front, so worker threads cannot fail; the
  /// whole batch either resolves or returns the validation error.
  StatusOr<std::vector<acm::Mode>> ResolveBatch(
      std::span<const Query> queries, const Strategy& strategy);

  /// \brief Reachability-scoped invalidation after a hierarchy edit:
  /// drops the cached sub-graphs and decisions of exactly the subjects
  /// in `affected` (the edit's affected set, as reported by the
  /// system's mutation API). Must not run concurrently with
  /// `ResolveBatch`. Returns the number of entries dropped.
  size_t InvalidateSubjects(std::span<const graph::NodeId> affected);

  /// Cache observability (exact between batches).
  const ShardedResolutionCache& resolution_cache() const {
    return resolution_cache_;
  }
  const ShardedSubgraphCache& subgraph_cache() const {
    return subgraph_cache_;
  }

  size_t threads() const { return options_.threads; }

 private:
  acm::Mode ResolveOne(const Query& query, const Strategy& canonical);

  const graph::Dag* dag_;
  const acm::ExplicitAcm* eacm_;
  BatchResolverOptions options_;
  ShardedResolutionCache resolution_cache_;
  ShardedSubgraphCache subgraph_cache_;
  ThreadPool pool_;
};

}  // namespace ucr::core

#endif  // UCR_CORE_BATCH_RESOLVER_H_
