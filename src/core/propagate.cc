#include "core/propagate.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "obs/profiler.h"

namespace ucr::core {

namespace {

using acm::PropagatedMode;
using graph::AncestorSubgraph;
using graph::LocalId;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/// Adapters giving the DP a uniform view of either one subject's
/// ancestor sub-graph or the whole hierarchy.
struct SubgraphView {
  const AncestorSubgraph& sub;
  size_t size() const { return sub.member_count(); }
  std::span<const LocalId> topo() const { return sub.topological_order(); }
  std::span<const LocalId> parents(LocalId v) const { return sub.parents(v); }
  graph::NodeId global_id(LocalId v) const { return sub.global_id(v); }
};

struct WholeDagView {
  const graph::Dag& dag;
  std::vector<graph::NodeId> topo_order;
  size_t size() const { return dag.node_count(); }
  std::span<const graph::NodeId> topo() const { return topo_order; }
  std::span<const graph::NodeId> parents(graph::NodeId v) const {
    return dag.parents(v);
  }
  graph::NodeId global_id(graph::NodeId v) const { return v; }
};

/// The Step-2 seed label of member `v`: its explicit label, the 'd'
/// marker if it is an unlabeled root, or nothing.
template <typename View>
std::optional<PropagatedMode> SeedLabel(const View& view, LabelView labels,
                                        LocalId v) {
  const std::optional<acm::Mode> explicit_label = labels[view.global_id(v)];
  if (explicit_label.has_value()) return acm::ToPropagated(*explicit_label);
  if (view.parents(v).empty()) return PropagatedMode::kDefault;
  return std::nullopt;
}

/// Appends `source`'s entries into `dest` with distance + 1.
void MergeShifted(const std::vector<RightsEntry>& source,
                  std::vector<RightsEntry>* dest) {
  for (const RightsEntry& e : source) {
    dest->push_back(RightsEntry{e.dis + 1, e.mode, e.multiplicity});
  }
}

/// Sorts by (dis, mode) and merges equal groups in place.
void NormalizeEntries(std::vector<RightsEntry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const RightsEntry& a, const RightsEntry& b) {
              if (a.dis != b.dis) return a.dis < b.dis;
              return a.mode < b.mode;
            });
  size_t out = 0;
  for (size_t i = 0; i < entries->size(); ++i) {
    if (out > 0 && (*entries)[out - 1].dis == (*entries)[i].dis &&
        (*entries)[out - 1].mode == (*entries)[i].mode) {
      (*entries)[out - 1].multiplicity = SatAdd(
          (*entries)[out - 1].multiplicity, (*entries)[i].multiplicity);
    } else {
      (*entries)[out++] = (*entries)[i];
    }
  }
  entries->resize(out);
}

RightsBag ToBag(std::vector<RightsEntry> entries) {
  RightsBag bag;
  for (const RightsEntry& e : entries) bag.Add(e.dis, e.mode, e.multiplicity);
  bag.Normalize();
  return bag;
}

void Observe(PropagateStats* stats, uint64_t tuples, uint32_t dis) {
  if (stats == nullptr) return;
  stats->tuples_processed = SatAdd(stats->tuples_processed, tuples);
  stats->max_distance = std::max(stats->max_distance, dis);
}

template <typename View>
std::vector<std::vector<RightsEntry>> AggregatedImpl(
    const View& view, LabelView labels, const PropagateOptions& options,
    PropagateStats* stats) {
  const size_t n = view.size();
  std::vector<std::vector<RightsEntry>> result(n);

  // `forward[v]`: the entries that continue below v under the active
  // propagation mode. For kBoth it aliases result[v]; the other modes
  // diverge (see PropagationMode documentation).
  std::vector<std::vector<RightsEntry>> forward(n);

  // kFirstWins: number of root-paths to v with no labeled node
  // strictly above v. Every root carries a seed (explicit or 'd'), so
  // clean() is 1 on roots and 0 elsewhere; the general recurrence is
  // kept for clarity and robustness.
  std::vector<uint64_t> clean(n, 0);

  for (LocalId v : view.topo()) {
    const std::optional<PropagatedMode> seed = SeedLabel(view, labels, v);

    std::vector<RightsEntry> arriving;
    for (LocalId p : view.parents(v)) MergeShifted(forward[p], &arriving);
    NormalizeEntries(&arriving);

    switch (options.propagation_mode) {
      case PropagationMode::kBoth: {
        std::vector<RightsEntry>& bag = result[v];
        if (seed.has_value()) bag.push_back(RightsEntry{0, *seed, 1});
        bag.insert(bag.end(), arriving.begin(), arriving.end());
        NormalizeEntries(&bag);
        forward[v] = bag;
        break;
      }
      case PropagationMode::kSecondWins: {
        std::vector<RightsEntry>& bag = result[v];
        if (seed.has_value()) bag.push_back(RightsEntry{0, *seed, 1});
        bag.insert(bag.end(), arriving.begin(), arriving.end());
        NormalizeEntries(&bag);
        // A labeled node forwards only its own label; arrivals stop.
        forward[v] = seed.has_value()
                         ? std::vector<RightsEntry>{RightsEntry{0, *seed, 1}}
                         : arriving;
        break;
      }
      case PropagationMode::kFirstWins: {
        if (view.parents(v).empty()) {
          clean[v] = 1;
        } else {
          uint64_t c = 0;
          for (LocalId p : view.parents(v)) {
            if (!SeedLabel(view, labels, p).has_value()) {
              c = SatAdd(c, clean[p]);
            }
          }
          clean[v] = c;
        }
        std::vector<RightsEntry>& bag = result[v];
        if (seed.has_value() && clean[v] > 0) {
          bag.push_back(RightsEntry{0, *seed, clean[v]});
        }
        bag.insert(bag.end(), arriving.begin(), arriving.end());
        NormalizeEntries(&bag);
        forward[v] = bag;
        break;
      }
    }
    for (const RightsEntry& e : result[v]) Observe(stats, 1, e.dis);
  }
  return result;
}

}  // namespace

RightsBag PropagateAggregated(const AncestorSubgraph& sub, LabelView labels,
                              const PropagateOptions& options,
                              PropagateStats* stats) {
  // Phase attribution (DESIGN.md §14): inert unless the enclosing
  // query is sampled.
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kPropagate);
  std::vector<RightsBag> all = PropagateAggregatedAll(sub, labels, options,
                                                      stats);
  return std::move(all[sub.sink()]);
}

std::vector<RightsBag> PropagateAggregatedAll(const AncestorSubgraph& sub,
                                              LabelView labels,
                                              const PropagateOptions& options,
                                              PropagateStats* stats) {
  assert(labels.size() >= sub.dag().node_count());
  std::vector<std::vector<RightsEntry>> raw =
      AggregatedImpl(SubgraphView{sub}, labels, options, stats);
  std::vector<RightsBag> bags;
  bags.reserve(raw.size());
  for (auto& entries : raw) bags.push_back(ToBag(std::move(entries)));
  return bags;
}

std::vector<RightsBag> PropagateWholeDag(const graph::Dag& dag,
                                         LabelView labels,
                                         const PropagateOptions& options,
                                         PropagateStats* stats) {
  assert(labels.size() >= dag.node_count());
  WholeDagView view{dag, dag.TopologicalOrder()};
  std::vector<std::vector<RightsEntry>> raw =
      AggregatedImpl(view, labels, options, stats);
  std::vector<RightsBag> bags;
  bags.reserve(raw.size());
  for (auto& entries : raw) bags.push_back(ToBag(std::move(entries)));
  return bags;
}

namespace {

struct Tuple {
  LocalId node;
  uint32_t dis;
  PropagatedMode mode;
};

StatusOr<std::vector<RightsBag>> LiteralImpl(const AncestorSubgraph& sub,
                                             LabelView labels,
                                             const PropagateOptions& options,
                                             PropagateStats* stats,
                                             uint64_t max_tuples,
                                             bool collect_all) {
  assert(labels.size() >= sub.dag().node_count());
  const size_t n = sub.member_count();
  const LocalId sink = sub.sink();
  std::vector<RightsBag> bags(n);

  uint64_t created = 0;
  std::deque<Tuple> queue;
  auto emit = [&](LocalId node, uint32_t dis,
                  PropagatedMode mode) -> Status {
    if (++created > max_tuples) {
      return Status::FailedPrecondition(
          "literal propagation exceeded max_tuples=" +
          std::to_string(max_tuples) +
          " (path explosion; use PropagateAggregated)");
    }
    Observe(stats, 1, dis);
    if (collect_all || node == sink) bags[node].Add(dis, mode, 1);
    if (node != sink) queue.push_back(Tuple{node, dis, mode});
    return Status::OK();
  };

  // Seeds (Fig. 5 lines 3–5). Under kFirstWins only roots emit; every
  // root is labeled (explicitly or by the 'd' marker), so any deeper
  // label can never be "first" on its path.
  for (LocalId v = 0; v < n; ++v) {
    const std::optional<PropagatedMode> seed = SeedLabel(sub, labels, v);
    if (!seed.has_value()) continue;
    if (options.propagation_mode == PropagationMode::kFirstWins &&
        !sub.parents(v).empty()) {
      continue;
    }
    UCR_RETURN_IF_ERROR(emit(v, 0, *seed));
  }

  // Push every tuple down every outgoing edge (Fig. 5 lines 6–11).
  while (!queue.empty()) {
    const Tuple t = queue.front();
    queue.pop_front();
    if (options.propagation_mode == PropagationMode::kSecondWins &&
        t.dis > 0 && SeedLabel(sub, labels, t.node).has_value()) {
      continue;  // A more specific authorization replaces this one.
    }
    for (LocalId c : sub.children(t.node)) {
      UCR_RETURN_IF_ERROR(emit(c, t.dis + 1, t.mode));
    }
  }

  for (auto& bag : bags) bag.Normalize();
  return bags;
}

}  // namespace

StatusOr<RightsBag> PropagateLiteral(const AncestorSubgraph& sub,
                                     LabelView labels,
                                     const PropagateOptions& options,
                                     PropagateStats* stats,
                                     uint64_t max_tuples) {
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kPropagate);
  UCR_ASSIGN_OR_RETURN(
      std::vector<RightsBag> bags,
      LiteralImpl(sub, labels, options, stats, max_tuples,
                  /*collect_all=*/false));
  return std::move(bags[sub.sink()]);
}

StatusOr<std::vector<RightsBag>> PropagateLiteralAll(
    const AncestorSubgraph& sub, LabelView labels,
    const PropagateOptions& options, PropagateStats* stats,
    uint64_t max_tuples) {
  return LiteralImpl(sub, labels, options, stats, max_tuples,
                     /*collect_all=*/true);
}

}  // namespace ucr::core
