#ifndef UCR_CORE_SHARDED_CACHE_H_
#define UCR_CORE_SHARDED_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "acm/acm.h"
#include "acm/mode.h"
#include "core/cache.h"
#include "core/strategy.h"
#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"

namespace ucr::core {

/// \brief Thread-safe, mutex-striped variant of `ResolutionCache`, so
/// batch workers *share* warm decisions instead of duplicating them —
/// Crampton & Sellwood's observation that cached path-derived
/// decisions dominate at scale, applied to the paper's future-work #1.
///
/// The key space is split over `kShardCount` shards by key hash; each
/// shard has its own mutex and map, so concurrent lookups of different
/// keys rarely contend. Stats are per-shard and lock-protected (no
/// cross-shard torn reads); `stats()` sums a consistent snapshot per
/// shard, and after all workers join, hits + misses equals the exact
/// number of lookups issued.
///
/// Epoch semantics are identical to `ResolutionCache`: entries carry
/// the (object, right) column epoch they were derived at, and a lookup
/// with a newer epoch evicts and misses.
class ShardedResolutionCache {
 public:
  /// Power of two so the hash → shard map is a mask, and comfortably
  /// above any realistic worker count (the issue sweeps 1–8 threads).
  static constexpr size_t kShardCount = 16;

  ShardedResolutionCache() = default;

  ShardedResolutionCache(const ShardedResolutionCache&) = delete;
  ShardedResolutionCache& operator=(const ShardedResolutionCache&) = delete;

  /// Looks up a cached decision valid at `epoch`. Thread-safe.
  std::optional<acm::Mode> Lookup(graph::NodeId subject, acm::ObjectId object,
                                  acm::RightId right, const Strategy& strategy,
                                  uint64_t epoch);

  /// Stores a decision computed at `epoch`. Thread-safe; last writer
  /// wins (all writers compute the same deterministic decision, so the
  /// race is benign).
  void Store(graph::NodeId subject, acm::ObjectId object, acm::RightId right,
             const Strategy& strategy, uint64_t epoch, acm::Mode mode);

  /// Drops every entry and resets the stats (a clear is a fresh cache:
  /// hit-rate reporting never mixes lifetimes — the PR-1 stats-leak
  /// regression class). Dropped entries are counted as evictions in
  /// the metrics registry, which is monotonic and survives the reset.
  /// Takes all shard locks; callers must quiesce concurrent writers if
  /// they need the clear to be a clean point-in-time cut.
  void Clear();

  /// \brief Reachability-scoped invalidation (DESIGN.md §10): drops
  /// only entries whose subject is marked in `affected` (node-id-
  /// indexed bitmap). Locks shard-by-shard; callers must quiesce
  /// concurrent batches, like `Clear`. Counted as invalidations so
  /// survivors' hit-rate history stays intact. Returns drops.
  size_t EraseSubjects(const std::vector<uint8_t>& affected);

  /// Entry count; locks shard-by-shard (exact only while quiescent).
  size_t size() const;

  /// Summed per-shard stats; exact once concurrent callers joined.
  ResolutionCache::Stats stats() const;

 private:
  struct Entry {
    uint64_t epoch;
    acm::Mode mode;
  };

  struct CacheKey {
    uint64_t triple;   // subject:32 | object:16 | right:16.
    uint8_t strategy;  // canonical index, < 48.
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return (k.triple * 0x9E3779B97F4A7C15ull) ^ k.strategy;
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<CacheKey, Entry, CacheKeyHash> entries;
    ResolutionCache::Stats stats;
  };

  static CacheKey Key(graph::NodeId s, acm::ObjectId o, acm::RightId r,
                      const Strategy& strategy) {
    return CacheKey{(static_cast<uint64_t>(s) << 32) |
                        (static_cast<uint64_t>(o) << 16) |
                        static_cast<uint64_t>(r),
                    strategy.CanonicalIndex()};
  }

  Shard& ShardFor(const CacheKey& key) {
    return shards_[CacheKeyHash{}(key) & (kShardCount - 1)];
  }

  std::array<Shard, kShardCount> shards_;
};

/// \brief Thread-safe, mutex-striped variant of `SubgraphCache`:
/// extracted ancestor sub-graphs shared across worker threads.
///
/// Shards by subject id. The returned reference is stable for the
/// cache's lifetime (`unique_ptr` indirection, and entries are only
/// removed by `Clear`, which the caller must not run concurrently with
/// `Get`). Extraction happens under the shard lock, so concurrent
/// requests for one subject extract exactly once and the other callers
/// block briefly and then share it; requests on other shards proceed
/// untouched. Hierarchy edits invalidate by subject via
/// `EraseSubjects` (DESIGN.md §10); everything else stays warm.
class ShardedSubgraphCache {
 public:
  static constexpr size_t kShardCount = 16;

  ShardedSubgraphCache() = default;

  ShardedSubgraphCache(const ShardedSubgraphCache&) = delete;
  ShardedSubgraphCache& operator=(const ShardedSubgraphCache&) = delete;

  /// Returns the cached sub-graph of `subject`, extracting on miss.
  /// Thread-safe; the reference stays valid until `Clear`. When `hit`
  /// is non-null it reports whether this call was served from cache
  /// (for trace records; reading the global counters instead would be
  /// racy under concurrency).
  const graph::AncestorSubgraph& Get(const graph::Dag& dag,
                                     graph::NodeId subject,
                                     bool* hit = nullptr);

  /// Drops all sub-graphs and resets the counters (see
  /// `SubgraphCache::Clear`). Not safe concurrently with `Get`.
  void Clear();

  /// Drops only the sub-graphs of subjects marked in `affected` after
  /// a hierarchy edit (DESIGN.md §10). Not safe concurrently with
  /// `Get` — a dropped sub-graph may still be referenced by an
  /// in-flight query. Returns the number dropped.
  size_t EraseSubjects(const std::vector<uint8_t>& affected);

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<graph::NodeId,
                       std::unique_ptr<graph::AncestorSubgraph>>
        subgraphs;
  };

  std::array<Shard, kShardCount> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace ucr::core

#endif  // UCR_CORE_SHARDED_CACHE_H_
