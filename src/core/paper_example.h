#ifndef UCR_CORE_PAPER_EXAMPLE_H_
#define UCR_CORE_PAPER_EXAMPLE_H_

#include "acm/acm.h"
#include "graph/dag.h"

namespace ucr::core {

/// \brief The paper's motivating example (Fig. 1), reconstructed.
///
/// Nine subjects: S1..S8 and User. Group-membership edges:
///
///     S1 -> S3          S2 -> S3    S2 -> User
///     S3 -> S4          S3 -> S5
///     S5 -> User        S6 -> S5    S6 -> User
///     S4 -> S7          S4 -> S8
///
/// Explicit authorizations on object "obj" for right "read":
/// S2 = '+', S4 = '+', S5 = '-'.
///
/// The sub-hierarchy of User (Fig. 3), its propagated relation P
/// (Table 4), User's allRights (Table 1), the 48 strategy outcomes
/// (Table 2), and the Resolve() traces (Table 3) are all derivable
/// from this fixture; the test suite checks each of them. S4's subtree
/// (S7, S8) lies outside User's ancestry — the paper does not pin that
/// part of Fig. 1 down, and no published table depends on it.
struct PaperExample {
  graph::Dag dag;
  acm::ExplicitAcm eacm;
  acm::ObjectId obj;
  acm::RightId read;
  graph::NodeId user;  ///< The subject queried throughout the paper.
};

/// Builds the fixture. Construction cannot fail; failures inside
/// (impossible by construction) abort.
PaperExample MakePaperExample();

/// The same fixture with the paper's §1.1 hypothetical extension: an
/// edge S1 -> S2 and an explicit '+' on S1 (the university/referee
/// scenario motivating the globality policy).
PaperExample MakeRefereeExample();

}  // namespace ucr::core

#endif  // UCR_CORE_PAPER_EXAMPLE_H_
