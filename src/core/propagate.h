#ifndef UCR_CORE_PROPAGATE_H_
#define UCR_CORE_PROPAGATE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "acm/mode.h"
#include "core/rights_bag.h"
#include "graph/ancestor_subgraph.h"
#include "util/status.h"

namespace ucr::core {

/// \brief What happens when a propagating authorization meets another
/// authorization on its path (the paper's future-work extension #3,
/// §6). A node "has an authorization" if it carries an explicit label
/// or is an unlabeled root carrying the 'd' default marker.
enum class PropagationMode : uint8_t {
  /// Both authorizations continue down the path — the paper's model
  /// (Figs. 4–5, Tables 1/4). A source's label reaches the subject
  /// once per directed path from the source.
  kBoth = 0,

  /// The first (more global) authorization on each path wins: a label
  /// propagates only along paths with no labeled node above its
  /// source. Because Step 2 marks every unlabeled root with 'd', every
  /// root is labeled, so under this mode only root authorizations
  /// propagate — including suppressing the subject's own explicit
  /// label unless the subject is itself a root.
  kFirstWins = 1,

  /// The second (more specific) authorization on each path wins: a
  /// label stops at the first labeled node strictly below its source,
  /// so only labels with a label-free path to the subject arrive. The
  /// subject's own label always survives (distance 0).
  kSecondWins = 2,
};

/// Options shared by the propagation engines.
struct PropagateOptions {
  PropagationMode propagation_mode = PropagationMode::kBoth;
};

/// Work counters of one propagation run.
struct PropagateStats {
  /// Literal engine: tuples created (initial seeds + one per tuple
  /// move along an edge). This is the paper's O(n + d) cost driver.
  /// Aggregated engine: (dis, mode) group-merge operations performed.
  uint64_t tuples_processed = 0;

  /// Highest distance reached by any tuple.
  uint32_t max_distance = 0;
};

/// Per-subject explicit labels for one (object, right) pair, indexed
/// by *global* node id (see `acm::ExplicitAcm::ExtractLabels`).
using LabelView = std::span<const std::optional<acm::Mode>>;

/// \brief Production implementation of Function Propagate()
/// (paper Fig. 5): computes the `allRights` bag of the sub-graph's
/// sink in time polynomial in the sub-graph size.
///
/// Tuples are never materialized per path; instead each node carries
/// its (distance, mode) -> multiplicity bag and parents' bags are
/// merged in topological order. The result is tuple-for-tuple equal to
/// the paper's per-path propagation (multiplicities included) at
/// O(V * D * 3) space instead of the potentially exponential O(d).
///
/// `labels.size()` must equal the node count of the underlying graph.
RightsBag PropagateAggregated(const graph::AncestorSubgraph& sub,
                              LabelView labels,
                              const PropagateOptions& options = {},
                              PropagateStats* stats = nullptr);

/// Full-relation variant: the bag of *every* member (the paper's
/// relation P, Table 4), indexed by local id.
std::vector<RightsBag> PropagateAggregatedAll(
    const graph::AncestorSubgraph& sub, LabelView labels,
    const PropagateOptions& options = {}, PropagateStats* stats = nullptr);

/// \brief Paper-literal implementation of Function Propagate(): a
/// breadth-first queue of individual tuples, each pushed down every
/// edge (Fig. 5 lines 6–11). Exactly the paper's O(n + d) cost model —
/// exponential on diamond stacks — so it exists for the cost-model
/// benchmarks (Figs. 6, 7) and as a differential-testing oracle.
///
/// `max_tuples` guards against path explosion; exceeding it returns
/// ResourceExhausted-like FailedPrecondition rather than looping for
/// hours.
StatusOr<RightsBag> PropagateLiteral(const graph::AncestorSubgraph& sub,
                                     LabelView labels,
                                     const PropagateOptions& options = {},
                                     PropagateStats* stats = nullptr,
                                     uint64_t max_tuples = UINT64_MAX);

/// \brief Whole-hierarchy propagation: the `allRights` bag of *every*
/// subject in one topological pass over the full graph.
///
/// For any subject v, propagation into v involves only v's ancestors,
/// and the unlabeled roots of v's ancestor sub-graph are exactly the
/// unlabeled roots of the whole hierarchy that are ancestors of v — so
/// the per-subject bags computed here equal `PropagateAggregated` run
/// on each subject's own sub-graph, at a fraction of the cost. This is
/// the engine behind effective-matrix materialization.
std::vector<RightsBag> PropagateWholeDag(const graph::Dag& dag,
                                         LabelView labels,
                                         const PropagateOptions& options = {},
                                         PropagateStats* stats = nullptr);

/// Full-relation variant of the literal engine (paper Table 4).
StatusOr<std::vector<RightsBag>> PropagateLiteralAll(
    const graph::AncestorSubgraph& sub, LabelView labels,
    const PropagateOptions& options = {}, PropagateStats* stats = nullptr,
    uint64_t max_tuples = UINT64_MAX);

}  // namespace ucr::core

#endif  // UCR_CORE_PROPAGATE_H_
