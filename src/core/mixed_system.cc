#include "core/mixed_system.h"

#include <algorithm>
#include <sstream>

#include "acm/mode.h"
#include "graph/io.h"
#include "util/string_util.h"

namespace ucr::core {

MixedAccessControlSystem::MixedAccessControlSystem(graph::Dag subjects,
                                                   graph::Dag objects)
    : subjects_(std::move(subjects)), objects_(std::move(objects)) {}

StatusOr<size_t> MixedAccessControlSystem::InternRight(
    std::string_view right) {
  auto it = right_ids_.find(std::string(right));
  if (it != right_ids_.end()) return it->second;
  const size_t id = right_names_.size();
  right_names_.emplace_back(right);
  right_ids_.emplace(std::string(right), id);
  entries_.emplace_back();
  return id;
}

Status MixedAccessControlSystem::SetPair(std::string_view subject,
                                         std::string_view object,
                                         std::string_view right,
                                         acm::Mode mode) {
  const graph::NodeId s = subjects_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  const graph::NodeId o = objects_.FindNode(object);
  if (o == graph::kInvalidNode) {
    return Status::NotFound("unknown object '" + std::string(object) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const size_t r, InternRight(right));
  auto [it, inserted] = entries_[r].try_emplace(NodePair{s, o}, mode);
  if (!inserted) {
    if (it->second == mode) return Status::OK();
    return Status::FailedPrecondition(
        "contradicting explicit authorization on pair (" +
        std::string(subject) + ", " + std::string(object) + ")");
  }
  return Status::OK();
}

Status MixedAccessControlSystem::Grant(std::string_view subject,
                                       std::string_view object,
                                       std::string_view right) {
  return SetPair(subject, object, right, acm::Mode::kPositive);
}

Status MixedAccessControlSystem::DenyAccess(std::string_view subject,
                                            std::string_view object,
                                            std::string_view right) {
  return SetPair(subject, object, right, acm::Mode::kNegative);
}

StatusOr<bool> MixedAccessControlSystem::Revoke(std::string_view subject,
                                                std::string_view object,
                                                std::string_view right) {
  const graph::NodeId s = subjects_.FindNode(subject);
  const graph::NodeId o = objects_.FindNode(object);
  if (s == graph::kInvalidNode || o == graph::kInvalidNode) {
    return Status::NotFound("unknown subject or object");
  }
  auto it = right_ids_.find(std::string(right));
  if (it == right_ids_.end()) {
    return Status::NotFound("unknown right '" + std::string(right) + "'");
  }
  return entries_[it->second].erase(NodePair{s, o}) > 0;
}

size_t MixedAccessControlSystem::authorization_count() const {
  size_t total = 0;
  for (const auto& per_right : entries_) total += per_right.size();
  return total;
}

StatusOr<acm::Mode> MixedAccessControlSystem::CheckAccess(
    std::string_view subject, std::string_view object,
    std::string_view right) {
  return CheckAccess(subject, object, right, strategy_);
}

StatusOr<acm::Mode> MixedAccessControlSystem::CheckAccess(
    std::string_view subject, std::string_view object, std::string_view right,
    const Strategy& strategy, ResolveTrace* trace) {
  const graph::NodeId s = subjects_.FindNode(subject);
  if (s == graph::kInvalidNode) {
    return Status::NotFound("unknown subject '" + std::string(subject) + "'");
  }
  const graph::NodeId o = objects_.FindNode(object);
  if (o == graph::kInvalidNode) {
    return Status::NotFound("unknown object '" + std::string(object) + "'");
  }
  UCR_ASSIGN_OR_RETURN(const std::vector<MixedAuthorization> auths,
                       AuthorizationsFor(right));
  UCR_ASSIGN_OR_RETURN(const RightsBag bag,
                       MixedPropagate(subjects_, objects_, auths, s, o));
  return Resolve(bag, strategy, trace);
}

StatusOr<std::vector<MixedAuthorization>>
MixedAccessControlSystem::AuthorizationsFor(std::string_view right) const {
  auto it = right_ids_.find(std::string(right));
  if (it == right_ids_.end()) {
    // A never-granted right is simply empty, not an error: queries on
    // it resolve purely from defaults.
    return std::vector<MixedAuthorization>{};
  }
  std::vector<MixedAuthorization> out;
  out.reserve(entries_[it->second].size());
  for (const auto& [pair, mode] : entries_[it->second]) {
    out.push_back(MixedAuthorization{pair.subject, pair.object, mode});
  }
  return out;
}

std::string SaveMixedSystemToText(const MixedAccessControlSystem& system) {
  std::ostringstream out;
  out << "# ucr mixed system v1\n";
  out << "strategy " << system.strategy().ToMnemonic() << "\n";
  out << "[subjects]\n" << graph::ToEdgeListText(system.subjects());
  out << "[objects]\n" << graph::ToEdgeListText(system.objects());
  out << "[authorizations]\n";
  for (const std::string& right : system.rights()) {
    auto auths = system.AuthorizationsFor(right);
    if (!auths.ok()) continue;  // Unreachable: rights() is authoritative.
    // Deterministic order.
    std::vector<MixedAuthorization> sorted = std::move(auths).value();
    std::sort(sorted.begin(), sorted.end(),
              [](const MixedAuthorization& a, const MixedAuthorization& b) {
                if (a.subject != b.subject) return a.subject < b.subject;
                return a.object < b.object;
              });
    for (const MixedAuthorization& a : sorted) {
      out << "auth " << system.subjects().name(a.subject) << " "
          << system.objects().name(a.object) << " " << right << " "
          << acm::ModeToChar(a.mode) << "\n";
    }
  }
  return out.str();
}

StatusOr<MixedAccessControlSystem> LoadMixedSystemFromText(
    std::string_view text) {
  enum class Section { kPreamble, kSubjects, kObjects, kAuthorizations };
  Section section = Section::kPreamble;
  std::optional<Strategy> strategy;
  std::string subjects_text;
  std::string objects_text;
  std::vector<std::vector<std::string>> auth_rows;

  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view raw = text.substr(pos, end - pos);
    const std::string_view line = Trim(raw);
    pos = end + 1;
    ++line_no;
    auto error = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (line == "[subjects]") {
      section = Section::kSubjects;
      continue;
    }
    if (line == "[objects]") {
      section = Section::kObjects;
      continue;
    }
    if (line == "[authorizations]") {
      section = Section::kAuthorizations;
      continue;
    }
    switch (section) {
      case Section::kPreamble:
        if (line.empty() || line[0] == '#') break;
        if (StartsWith(line, "strategy ")) {
          auto parsed = ParseStrategy(Trim(line.substr(9)));
          if (!parsed.ok()) return error(parsed.status().message());
          strategy = *parsed;
          break;
        }
        return error("unexpected content before [subjects]");
      case Section::kSubjects:
        subjects_text.append(raw);
        subjects_text.push_back('\n');
        break;
      case Section::kObjects:
        objects_text.append(raw);
        objects_text.push_back('\n');
        break;
      case Section::kAuthorizations: {
        if (line.empty() || line[0] == '#') break;
        std::vector<std::string> fields;
        for (auto& f : Split(line, ' ')) {
          if (!f.empty()) fields.push_back(std::move(f));
        }
        if (fields.size() != 5 || fields[0] != "auth") {
          return error("expected 'auth <subject> <object> <right> <+|->'");
        }
        auth_rows.push_back(std::move(fields));
        break;
      }
    }
  }
  if (section != Section::kAuthorizations) {
    return Status::Corruption(
        "missing [subjects]/[objects]/[authorizations] sections");
  }

  auto subjects = graph::FromEdgeListText(subjects_text);
  if (!subjects.ok()) {
    return Status::Corruption("subjects: " + subjects.status().message());
  }
  auto objects = graph::FromEdgeListText(objects_text);
  if (!objects.ok()) {
    return Status::Corruption("objects: " + objects.status().message());
  }
  MixedAccessControlSystem system(std::move(subjects).value(),
                                  std::move(objects).value());
  if (strategy.has_value()) system.SetStrategy(*strategy);
  for (const auto& fields : auth_rows) {
    const auto mode =
        fields[4].size() == 1 ? acm::ModeFromChar(fields[4][0]) : std::nullopt;
    if (!mode.has_value()) {
      return Status::Corruption("authorizations: mode must be '+' or '-'");
    }
    const Status status =
        *mode == acm::Mode::kPositive
            ? system.Grant(fields[1], fields[2], fields[3])
            : system.DenyAccess(fields[1], fields[2], fields[3]);
    if (!status.ok()) {
      return Status::Corruption("authorizations: " + status.message());
    }
  }
  return system;
}

}  // namespace ucr::core
